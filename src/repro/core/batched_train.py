"""Batched training: build every group's model in shared vectorised passes.

The scalar path in :mod:`repro.core.groupby` trains one group at a time —
re-scanning the whole sample with a boolean mask per group (O(N·G)), then
fitting one KDE and one regressor per group through many small numpy
calls.  PR 1 removed exactly this shape of bottleneck from the *answer*
side; this module applies the same treatment to the *build* side:

* **Partition once** — a single stable ``np.argsort`` over the group
  column plus ``np.searchsorted`` boundaries yields every group's rows as
  a contiguous slice (:class:`GroupPartition`).  Both the batched and
  scalar trainers and the ``RawGroup`` collection share it, so no path
  re-masks the table per group.
* **All KDEs in one pass** — per-group Scott/Silverman bandwidths come
  from segmented moment reductions (``np.add.reduceat`` sums, vectorised
  quantiles over a within-group sort); the binned fast path histograms
  every large group at once with a single 2-D ``np.bincount`` over
  (group, bin) codes that replicates ``np.histogram``'s uniform-bin index
  arithmetic bit for bit.
* **All OLS / piecewise-linear fits in one solve** — stacked normal
  equations: batched Gram matrices (``np.einsum`` over equal-sized
  groups, blocked outer-product reductions otherwise) solved with one
  ``np.linalg.solve`` over a ``(G, k, k)`` stack plus two iterative
  refinement sweeps against the least-squares residual.  Groups whose Gram
  matrix is ill-conditioned (ties, degenerate features) fall back to the
  scalar trainer's own ``np.linalg.lstsq`` on their design slice, which
  keeps coefficients bit-identical exactly where stacked solves would
  drift.
* **Residual-variance state in bulk** — the law-of-total-variance bins of
  :meth:`ColumnSetModel._fit_residual_variance` are rebuilt with the same
  segmented quantiles and one global ``np.bincount``.
* **Multivariate predicates batch too** — product-kernel KDEs
  (:class:`~repro.ml.kde.MultivariateKDE`) get per-dimension bandwidths
  from the same segmented moment reductions and one vectorised
  d-dimensional binning pass: per-group bin codes from blocked
  edge comparisons (replicating ``np.histogramdd``'s
  searchsorted-with-right-edge-fold arithmetic bit for bit), flattened
  into a multi-index and counted with a single global ``np.bincount``.
  Multivariate OLS regressors join the stacked normal-equation solve with
  a ``d + 1``-wide design.
* **Nonlinear regressors** (tree / gboost / xgboost / ensemble) cannot be
  stacked into a linear solve; their fits run through *chunked*
  ``map_parallel`` with row-weighted chunks while the density work stays
  batched.

Contract
========

:func:`train_batched_models` returns the per-group ``models`` dict of a
:class:`~repro.core.groupby.GroupByModelSet` — 1-D and multivariate
predicate sets alike.  The scalar loop in ``GroupByModelSet.train``
remains as the parity oracle and as an explicit opt-out
(``DBEstConfig(batched_train=False)`` or ``train(..., batched=False)``),
no longer as a routing fallback: batched-trained models match
loop-trained models to ~1e-12 in every parameter (centres, weights and
knots bit for bit; solver-touched coefficients to 1e-12 relative) and
answer queries identically to 1e-9.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.batched import _chunk_by_budget, _csr_take_rows
from repro.core.config import DBEstConfig
from repro.core.model import ColumnSetModel, _make_regressor
from repro.core.parallel import chunk_bounds_weighted, map_parallel
from repro.errors import InvalidParameterError, ModelTrainingError
from repro.ml.kde import KernelDensityEstimator, MultivariateKDE
from repro.ml.linear import LinearRegressor, PiecewiseLinearRegressor
from repro.obs import get_registry


def _record_train_metrics(t0: float, n_rows: int, n_groups: int) -> None:
    """Push one training pass's volume and wall time (no-op when off)."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.histogram("repro_train_seconds").observe(perf_counter() - t0)
    registry.counter("repro_train_rows_total").inc(n_rows)
    registry.counter("repro_train_groups_total").inc(n_groups)

# Relative size of the iterative-refinement correction above which a
# group leaves the stacked normal-equation solve for a per-group lstsq.
# The first refinement step's magnitude is a direct estimate of the
# normal-equation error (~cond(Gram) * eps), so a large step marks an
# ill-conditioned group whose lstsq minimum-norm answer the stacked solve
# cannot reproduce; a small step certifies the refined solution is within
# ~1e-13 of lstsq.
_REFINE_LIMIT = 1e-9

# Element budget for blocked outer-product (Gram) and edge-comparison
# passes: bounds temporary matrices to a few MB.
_BLOCK_ELEMENTS = 1 << 22

_STACKED_REGRESSORS = ("linear", "plr")


class GroupPartition:
    """Sorted view of a group column: one argsort, O(1) per-group slices.

    ``order`` is a *stable* permutation sorting the rows by group value,
    so ``order[offsets[g]:offsets[g + 1]]`` lists group ``g``'s row
    indices in their original order — gathering with them reproduces the
    arrays a boolean mask would produce, without the per-group O(N) scan.
    """

    def __init__(
        self, order: np.ndarray, offsets: np.ndarray, values: np.ndarray
    ) -> None:
        self.order = order
        self.offsets = offsets
        self.values = values

    @classmethod
    def from_groups(
        cls, groups: np.ndarray, values: np.ndarray | None = None
    ) -> "GroupPartition":
        """Partition ``groups`` by the sorted distinct ``values``.

        ``values`` may be a superset of the values present (the sample
        partition is aligned to the full table's group values); absent
        groups get empty slices.  When omitted, the distinct values are
        derived from the sort's own change points — one O(N log N) pass
        total, where ``np.unique`` would sort the column a second time.
        """
        groups = np.asarray(groups)
        order = np.argsort(groups, kind="stable")
        sorted_groups = groups[order]
        if values is None:
            if sorted_groups.shape[0]:
                change = np.concatenate(
                    ([True], sorted_groups[1:] != sorted_groups[:-1])
                )
                values = sorted_groups[change]
                starts = np.flatnonzero(change)
            else:
                values = sorted_groups
                starts = np.zeros(0, dtype=np.int64)
        else:
            values = np.asarray(values)
            if values.shape[0] > 1 and not np.all(values[1:] > values[:-1]):
                # searchsorted silently returns garbage starts for an
                # unsorted (or duplicated) superset, mis-sizing every
                # slice after the first inversion.
                values = np.unique(values)
            starts = np.searchsorted(sorted_groups, values, side="left")
        offsets = np.concatenate(
            (starts, [groups.shape[0]])
        ).astype(np.int64)
        return cls(order=order, offsets=offsets, values=values)

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def rows(self, g: int) -> np.ndarray:
        """Original row indices of group ``g``, in original order."""
        return self.order[self.offsets[g]:self.offsets[g + 1]]

    def merge(
        self, new_groups: np.ndarray, base: int | None = None
    ) -> "tuple[GroupPartition, np.ndarray]":
        """Merge appended rows into the partition without re-sorting all N.

        ``new_groups`` are the group values of rows appended after the
        partitioned array; their row indices are ``base + arange(m)``
        (``base`` defaults to the current row count).  Only the delta is
        argsorted — the existing ``order`` is interleaved into the merged
        permutation with two vectorised scatters, so the cost is
        O(m log m + N copy) instead of O((N + m) log (N + m)).

        Returns ``(merged, dirty)`` where ``dirty`` holds the indices
        (into ``merged.values``) of groups that received rows.  The
        merged partition is bit-identical to ``from_groups`` on the
        concatenated group column: stable sort keeps old rows before new
        rows within a group, and both were internally ordered already.
        """
        new_groups = np.asarray(new_groups)
        m = new_groups.shape[0]
        n_old = self.order.shape[0]
        if base is None:
            base = n_old
        if m == 0:
            return (
                GroupPartition(
                    order=self.order, offsets=self.offsets, values=self.values
                ),
                np.zeros(0, dtype=np.int64),
            )
        new_local = np.argsort(new_groups, kind="stable")
        sorted_new = new_groups[new_local]
        values = np.union1d(self.values, sorted_new)
        counts_old = np.zeros(values.shape[0], dtype=np.int64)
        old_pos = np.searchsorted(values, self.values)
        counts_old[old_pos] = self.counts
        new_starts = np.searchsorted(sorted_new, values, side="left")
        counts_new = np.diff(np.concatenate((new_starts, [m])))
        offsets = np.zeros(values.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts_old + counts_new, out=offsets[1:])
        order = np.empty(n_old + m, dtype=self.order.dtype)
        if n_old:
            # Old row i of group g lands at the group's merged start plus
            # its rank within the group (old rows precede new ones).
            within_old = np.arange(n_old) - np.repeat(
                self.offsets[:-1], self.counts
            )
            dest_old = (
                np.repeat(offsets[:-1][old_pos], self.counts) + within_old
            )
            order[dest_old] = self.order
        within_new = np.arange(m) - np.repeat(new_starts, counts_new)
        dest_new = (
            np.repeat(offsets[:-1] + counts_old, counts_new) + within_new
        )
        order[dest_new] = new_local + base
        dirty = np.flatnonzero(counts_new > 0)
        return GroupPartition(order=order, offsets=offsets, values=values), dirty


def segmented_quantiles(
    sorted_flat: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    qs: np.ndarray,
) -> np.ndarray:
    """``np.quantile(x_g, qs)`` for many groups in one pass, bit-exact.

    ``sorted_flat`` holds each group's values ascending, group ``g``
    occupying ``sorted_flat[starts[g]:starts[g] + counts[g]]``.  The
    virtual index, gamma and two-branch lerp replicate numpy's ``linear``
    interpolation operation for operation, so results match per-group
    ``np.quantile`` calls bitwise — which keeps downstream ``np.unique``
    knot deduplication in agreement with the scalar trainer even when
    quantiles tie.
    """
    qs = np.asarray(qs, dtype=np.float64)
    virtual = (counts.astype(np.float64) - 1.0)[:, None] * qs[None, :]
    prev = np.floor(virtual)
    gamma = virtual - prev
    prev_idx = prev.astype(np.int64)
    next_idx = np.minimum(prev_idx + 1, (counts - 1)[:, None])
    base = starts[:, None]
    a = sorted_flat[base + prev_idx]
    b = sorted_flat[base + next_idx]
    diff = b - a
    out = a + diff * gamma
    np.copyto(out, b - diff * (1.0 - gamma), where=gamma >= 0.5)
    return out


def _dedup_sorted_rows(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row keep mask and kept counts for row-wise sorted matrices.

    Equivalent to ``np.unique`` per row (quantile vectors are already
    non-decreasing, so deduplication is consecutive).
    """
    keep = np.ones(matrix.shape, dtype=bool)
    keep[:, 1:] = matrix[:, 1:] != matrix[:, :-1]
    return keep, keep.sum(axis=1)


# -- density fitting ---------------------------------------------------------


def _fit_densities(
    xs: np.ndarray,
    offsets: np.ndarray,
    xs_sorted: np.ndarray | None,
    config: DBEstConfig,
    template: KernelDensityEstimator,
) -> dict:
    """Fit every modelled group's 1-D KDE in shared vectorised passes.

    Returns per-group arrays (``h``, support, point-mass flags) plus the
    ragged centre/weight arrays, all replicating
    :meth:`KernelDensityEstimator.fit` on each group's slice.
    """
    counts = np.diff(offsets)
    starts = offsets[:-1]
    m = counts.shape[0]
    if not np.all(np.isfinite(xs)):
        raise ModelTrainingError("KDE training data contains non-finite values")
    lo = np.minimum.reduceat(xs, starts)
    hi = np.maximum.reduceat(xs, starts)
    nf = counts.astype(np.float64)

    # Bandwidths: Scott / Silverman via segmented moments, or a shared
    # fixed float.  The degenerate-spread fallback mirrors the scalar
    # rules (max(|x[0]|, 1) * 1e-3).
    if isinstance(config.kde_bandwidth, str):
        mean = np.add.reduceat(xs, starts) / nf
        dev2 = xs - np.repeat(mean, counts)
        dev2 *= dev2
        sigma = np.sqrt(np.add.reduceat(dev2, starts) / nf)
        first_abs = np.maximum(np.abs(xs[starts]), 1.0) * 1e-3
        if config.kde_bandwidth == "scott":
            spread = np.where(sigma == 0.0, first_abs, sigma)
            h = spread * nf ** (-1.0 / 5.0)
        else:  # silverman
            quant = segmented_quantiles(
                xs_sorted, starts, counts, np.asarray([0.75, 0.25])
            )
            iqr = quant[:, 0] - quant[:, 1]
            spread = np.where(iqr > 0, np.minimum(sigma, iqr / 1.349), sigma)
            spread = np.where(spread == 0.0, first_abs, spread)
            h = 0.9 * spread * nf ** (-1.0 / 5.0)
    else:
        h = np.full(m, float(config.kde_bandwidth))

    # Binned compression for large groups: one 2-D bincount over
    # (group, bin) codes, replicating np.histogram's uniform-bin index
    # arithmetic (including the edge-rounding corrections) bit for bit.
    centres_2d = weights_2d = None
    binned_sel = np.empty(0, dtype=np.int64)
    binned_pos = np.full(m, -1, dtype=np.int64)
    if config.kde_binned:
        binned_sel = np.flatnonzero(counts > template.bin_threshold)
    if binned_sel.size:
        bin_t0 = perf_counter()
        binned_pos[binned_sel] = np.arange(binned_sel.size)
        n_bins = config.kde_bins
        first = lo[binned_sel].copy()
        last = hi[binned_sel].copy()
        flat_range = first == last
        first[flat_range] -= 0.5
        last[flat_range] += 0.5
        step = (last - first) / n_bins
        edges = np.arange(n_bins + 1)[None, :] * step[:, None] + first[:, None]
        edges[:, -1] = last
        rows = _csr_take_rows(offsets, binned_sel)
        xb = xs[rows]
        local_g = np.repeat(np.arange(binned_sel.size), counts[binned_sel])
        f_idx = ((xb - first[local_g]) / (last - first)[local_g]) * n_bins
        idx = f_idx.astype(np.intp)
        idx[idx == n_bins] -= 1
        idx[xb < edges[local_g, idx]] -= 1
        increment = (xb >= edges[local_g, idx + 1]) & (idx != n_bins - 1)
        idx[increment] += 1
        bin_counts = np.bincount(
            local_g * n_bins + idx, minlength=binned_sel.size * n_bins
        ).reshape(binned_sel.size, n_bins)
        centres_2d = 0.5 * (edges[:, :-1] + edges[:, 1:])
        weights_2d = bin_counts.astype(np.float64) / nf[binned_sel][:, None]
        keep_2d = bin_counts > 0
        registry = get_registry()
        if registry.enabled:
            registry.histogram("repro_train_bincount_seconds").observe(
                perf_counter() - bin_t0
            )
            registry.counter("repro_train_binned_rows_total").inc(
                int(counts[binned_sel].sum())
            )

    # Degenerate (constant) columns become point masses; everyone else
    # reflects kernels at the observed domain, exactly as the scalar fit.
    span = hi - lo
    degenerate = span <= 1e-12 * np.maximum(
        1.0, np.maximum(np.abs(lo), np.abs(hi))
    )
    reflect = ~degenerate
    pad = 4.0 * h
    sup_lo = np.where(reflect, lo, lo - pad)
    sup_hi = np.where(reflect, hi, hi + pad)

    # Uniform per-point weights for all unbinned groups in one pass.
    flat_weights = np.repeat(1.0 / nf, counts)
    centres_list: list[np.ndarray] = []
    weights_list: list[np.ndarray] = []
    for g in range(m):
        b = binned_pos[g]
        if b >= 0:
            keep = keep_2d[b]
            centres_list.append(centres_2d[b][keep])
            weights_list.append(weights_2d[b][keep])
        else:
            seg = slice(starts[g], starts[g] + counts[g])
            centres_list.append(xs[seg].copy())
            weights_list.append(flat_weights[seg].copy())
    return {
        "centres": centres_list,
        "weights": weights_list,
        "h": h,
        "lo": lo,
        "hi": hi,
        "sup_lo": sup_lo,
        "sup_hi": sup_hi,
        "reflect": reflect,
        "degenerate": degenerate,
    }


def _fit_multivariate_densities(
    xmat: np.ndarray,
    offsets: np.ndarray,
    config: DBEstConfig,
    template: MultivariateKDE,
) -> dict:
    """Fit every modelled group's product-kernel KDE in shared passes.

    Replicates :meth:`MultivariateKDE.fit` on each group's ``(n_g, d)``
    slice: per-dimension Scott/Silverman bandwidths from segmented moment
    reductions, and — for groups above the binning threshold — the
    ``np.histogramdd`` compression via one vectorised binning pass whose
    edge arithmetic (``np.linspace`` edges, searchsorted-right bin codes
    with the right-edge fold) matches numpy's bit for bit.  Returns the
    ragged per-group centre/weight arrays plus the ``(G, d)`` bandwidth
    and domain arrays.
    """
    counts = np.diff(offsets)
    starts = offsets[:-1]
    m = counts.shape[0]
    d = xmat.shape[1]
    nf = counts.astype(np.float64)
    lo = np.minimum.reduceat(xmat, starts, axis=0)
    hi = np.maximum.reduceat(xmat, starts, axis=0)

    # Per-dimension bandwidths; constant dimensions are detected from
    # the range (min == max, bit-robust where sigma == 0.0 depends on
    # summation order) and take the rules' degenerate-spread fallback
    # (max(|x[0]|, 1) * 1e-3), exactly as MultivariateKDE.fit does; the
    # scalar fit's 1e-12 floor is applied at the end.
    degenerate = lo == hi
    mean = np.add.reduceat(xmat, starts, axis=0) / nf[:, None]
    dev2 = xmat - np.repeat(mean, counts, axis=0)
    dev2 *= dev2
    sigma = np.sqrt(np.add.reduceat(dev2, starts, axis=0) / nf[:, None])
    first_abs = np.maximum(np.abs(xmat[starts, :]), 1.0) * 1e-3
    if config.kde_bandwidth == "scott":
        spread = np.where(degenerate | (sigma == 0.0), first_abs, sigma)
        h = spread * nf[:, None] ** (-1.0 / 5.0)
    else:  # silverman
        group_ids = np.repeat(np.arange(m), counts)
        spread = np.empty((m, d))
        for j in range(d):
            xsj = xmat[:, j]
            xsj_sorted = xsj[np.lexsort((xsj, group_ids))]
            quant = segmented_quantiles(
                xsj_sorted, starts, counts, np.asarray([0.75, 0.25])
            )
            iqr = quant[:, 0] - quant[:, 1]
            sj = np.where(
                iqr > 0, np.minimum(sigma[:, j], iqr / 1.349), sigma[:, j]
            )
            spread[:, j] = np.where(
                degenerate[:, j] | (sj == 0.0), first_abs[:, j], sj
            )
        h = 0.9 * spread * nf[:, None] ** (-1.0 / 5.0)
    h = np.maximum(h, 1e-12)

    # Binned compression: np.histogramdd per group becomes bincounts over
    # (group, flattened d-dimensional bin) codes, with groups chunked so
    # the dense cell array stays inside the element budget (bins**d grows
    # fast with d; one group per bincount is the scalar fit's footprint).
    binned_centres: dict[int, np.ndarray] = {}
    binned_weights: dict[int, np.ndarray] = {}
    binned_sel = np.empty(0, dtype=np.int64)
    if config.kde_binned:
        binned_sel = np.flatnonzero(counts > template.bin_threshold)
    if binned_sel.size:
        n_bins = template.bins_per_dim
        first = lo[binned_sel].copy()
        last = hi[binned_sel].copy()
        flat_range = first == last
        first[flat_range] -= 0.5
        last[flat_range] += 0.5
        edges = np.linspace(first, last, n_bins + 1, axis=-1)  # (B, d, bins+1)
        rows = _csr_take_rows(offsets, binned_sel)
        xb = xmat[rows]
        local_g = np.repeat(np.arange(binned_sel.size), counts[binned_sel])
        row_offsets = np.concatenate(
            ([0], np.cumsum(counts[binned_sel]))
        ).astype(np.int64)
        # histogramdd bin codes: one searchsorted per (group, dim) on the
        # group's own edges — the very operation np.histogramdd performs,
        # hence bit-exact — with values on the rightmost edge folded into
        # the last bin.  Binned groups are few and large, so the per-group
        # loop costs nothing next to the searches themselves.
        flat = np.zeros(xb.shape[0], dtype=np.int64)
        for j in range(d):
            cnt = np.empty(xb.shape[0], dtype=np.int64)
            for b in range(binned_sel.size):
                r0, r1 = row_offsets[b], row_offsets[b + 1]
                cnt[r0:r1] = np.searchsorted(
                    edges[b, j], xb[r0:r1, j], side="right"
                )
            flat = flat * n_bins + np.clip(cnt - 1, 0, n_bins - 1)
        n_cells = n_bins ** d
        centres_axes = 0.5 * (edges[:, :, :-1] + edges[:, :, 1:])
        digit_strides = [n_bins ** (d - 1 - j) for j in range(d)]
        per_chunk = max(1, int(_BLOCK_ELEMENTS // n_cells))
        for b0 in range(0, binned_sel.size, per_chunk):
            b1 = min(b0 + per_chunk, binned_sel.size)
            r0, r1 = row_offsets[b0], row_offsets[b1]
            chunk_counts = np.bincount(
                (local_g[r0:r1] - b0) * n_cells + flat[r0:r1],
                minlength=(b1 - b0) * n_cells,
            ).reshape(b1 - b0, n_cells)
            for b in range(b0, b1):
                g = int(binned_sel[b])
                cell_counts = chunk_counts[b - b0]
                kept = np.flatnonzero(cell_counts)
                # C-order flat index -> per-dimension digit, exactly the
                # meshgrid-ravel layout the scalar fit keeps.
                binned_centres[g] = np.stack(
                    [
                        centres_axes[b, j, (kept // digit_strides[j]) % n_bins]
                        for j in range(d)
                    ],
                    axis=1,
                )
                binned_weights[g] = (
                    cell_counts[kept].astype(np.float64) / nf[g]
                )

    flat_weights = np.repeat(1.0 / nf, counts)
    centres_list: list[np.ndarray] = []
    weights_list: list[np.ndarray] = []
    for g in range(m):
        if g in binned_centres:
            centres_list.append(binned_centres[g])
            weights_list.append(binned_weights[g])
        else:
            seg = slice(starts[g], starts[g] + counts[g])
            centres_list.append(xmat[seg].copy())
            weights_list.append(flat_weights[seg].copy())
    return {
        "centres": centres_list,
        "weights": weights_list,
        "h": h,
        "lo": lo,
        "hi": hi,
    }


# -- stacked linear-algebra regressors ---------------------------------------


def _batched_gram(
    design: np.ndarray, y: np.ndarray, local_offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group Gram matrices and right-hand sides from a flat design.

    Equal-sized groups reshape into a ``(G, n, k)`` stack and go through
    one ``np.einsum``; ragged groups take blocked outer products reduced
    with ``np.add.reduceat`` under a fixed element budget.
    """
    counts = np.diff(local_offsets)
    k = design.shape[1]
    if counts.size and np.all(counts == counts[0]):
        stacked = design.reshape(counts.size, counts[0], k)
        gram = np.einsum("gni,gnj->gij", stacked, stacked)
        rhs = np.einsum("gni,gn->gi", stacked, y.reshape(counts.size, counts[0]))
        return gram, rhs
    gram = np.empty((counts.size, k, k))
    rhs = np.add.reduceat(design * y[:, None], local_offsets[:-1], axis=0)
    chunk_starts = _chunk_by_budget(counts * (k * k), _BLOCK_ELEMENTS)
    for g0, g1 in zip(chunk_starts[:-1], chunk_starts[1:]):
        r0, r1 = local_offsets[g0], local_offsets[g1]
        block = design[r0:r1]
        products = block[:, :, None] * block[:, None, :]
        gram[g0:g1] = np.add.reduceat(
            products, local_offsets[g0:g1] - r0, axis=0
        )
    return gram, rhs


def _solve_stacked(
    design: np.ndarray,
    y: np.ndarray,
    local_offsets: np.ndarray,
) -> np.ndarray:
    """Least-squares coefficients for every group sharing one design width.

    Well-conditioned groups: one stacked ``np.linalg.solve`` of the
    normal equations plus two iterative-refinement sweeps against the
    least-squares residual (empirically within ~1e-13 of lstsq).  Groups
    whose refinement step is large or non-finite — ill-conditioned or
    rank-deficient designs — fall back to per-group ``np.linalg.lstsq``
    on the same design rows, bit-identical to the scalar trainer.
    """
    counts = np.diff(local_offsets)
    nb = counts.size
    k = design.shape[1]
    gram, rhs = _batched_gram(design, y, local_offsets)
    solvable = np.ones(nb, dtype=bool)
    try:
        solved = np.linalg.solve(gram, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        # Some group is exactly singular (LU hit a zero pivot): identify
        # the positive-definite subset and solve only it.  Rare path.
        eigenvalues = np.linalg.eigvalsh(gram)
        solvable = eigenvalues[:, 0] > 0
        solved = np.zeros((nb, k))
        if solvable.any():
            solved[solvable] = np.linalg.solve(
                gram[solvable], rhs[solvable][..., None]
            )[..., 0]

    coef = np.empty((nb, k))
    good = np.zeros(nb, dtype=bool)
    if solvable.any():
        si = np.flatnonzero(solvable)
        local_group = np.repeat(np.arange(nb), counts)
        if solvable.all():
            design_s, y_s = design, y
            offsets_s = local_offsets
            row_map = local_group
        else:
            rows_mask = solvable[local_group]
            design_s = design[rows_mask]
            y_s = y[rows_mask]
            offsets_s = np.concatenate(([0], np.cumsum(counts[si])))
            inverse = np.empty(nb, dtype=np.int64)
            inverse[si] = np.arange(si.size)
            row_map = inverse[local_group[rows_mask]]
        # Two refinement sweeps: the first recovers most of the
        # normal-equation error, the second polishes well-conditioned
        # groups to ~1e-13 of lstsq; the final step size certifies it.
        refined = solved[si]
        step = np.zeros(si.size)
        for _ in range(2):
            residual = y_s - np.einsum("nk,nk->n", design_s, refined[row_map])
            correction = np.add.reduceat(
                design_s * residual[:, None], offsets_s[:-1], axis=0
            )
            delta = np.linalg.solve(gram[si], correction[..., None])[..., 0]
            refined = refined + delta
            with np.errstate(invalid="ignore"):
                step = np.abs(delta).max(axis=1) / np.maximum(
                    np.abs(refined).max(axis=1), 1.0
                )
        accepted = np.isfinite(refined).all(axis=1) & np.isfinite(step)
        accepted &= step <= _REFINE_LIMIT
        good[si[accepted]] = True
        coef[si[accepted]] = refined[accepted]
    for g in np.flatnonzero(~good).tolist():
        seg = slice(local_offsets[g], local_offsets[g + 1])
        coef[g], *_ = np.linalg.lstsq(design[seg], y[seg], rcond=None)
    return coef


def _fit_stacked_regressors(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    xs_sorted: np.ndarray,
    kind: str,
    n_knots: int,
) -> tuple[list[np.ndarray], list[np.ndarray] | None, np.ndarray]:
    """Fit all groups' OLS / piecewise-linear regressors in stacked solves.

    Returns per-group coefficient arrays, per-group knot arrays (PLR
    only), and the flat in-sample predictions the residual-variance pass
    reuses.  Groups are bucketed by design width ``k`` (quantile-knot
    collisions shrink some groups' bases), each bucket solved as one
    ``(G_k, k, k)`` stack.
    """
    counts = np.diff(offsets)
    starts = offsets[:-1]
    m = counts.shape[0]
    if kind == "plr":
        qs = np.linspace(0.0, 1.0, n_knots + 2)[1:-1]
        quantile_knots = segmented_quantiles(xs_sorted, starts, counts, qs)
        keep, kept_counts = _dedup_sorted_rows(quantile_knots)
        widths = kept_counts + 2
    else:
        widths = np.full(m, 2, dtype=np.int64)

    coefs: list[np.ndarray] = [None] * m  # type: ignore[list-item]
    knots_out: list[np.ndarray] | None = [None] * m if kind == "plr" else None
    pred = np.empty_like(xs)
    for k in np.unique(widths).tolist():
        sel = np.flatnonzero(widths == k)
        rows = _csr_take_rows(offsets, sel)
        xk = xs[rows]
        yk = ys[rows]
        ck = counts[sel]
        local_offsets = np.concatenate(([0], np.cumsum(ck)))
        design = np.empty((xk.shape[0], k))
        design[:, 0] = 1.0
        design[:, 1] = xk
        if kind == "plr":
            kept = quantile_knots[sel][keep[sel]].reshape(sel.size, k - 2)
            knot_rows = np.repeat(kept, ck, axis=0)
            np.maximum(0.0, xk[:, None] - knot_rows, out=design[:, 2:])
        coef = _solve_stacked(design, yk, local_offsets)
        coef_rows = coef[np.repeat(np.arange(sel.size), ck)]
        pred[rows] = np.einsum("nk,nk->n", design, coef_rows)
        for i, g in enumerate(sel.tolist()):
            coefs[g] = coef[i]
            if knots_out is not None:
                knots_out[g] = kept[i]
    return coefs, knots_out, pred


# -- residual-variance state -------------------------------------------------


def _fit_residual_states(
    xs: np.ndarray,
    offsets: np.ndarray,
    xs_sorted: np.ndarray,
    residual_sq: np.ndarray,
) -> tuple[list, list, np.ndarray]:
    """Var(y|x) bins for every group, batched.

    Replicates :meth:`ColumnSetModel._fit_residual_variance`: quantile
    bin edges (deduplicated), per-bin residual second moments via one
    global ``np.bincount``, global fallback for empty bins.
    """
    counts = np.diff(offsets)
    starts = offsets[:-1]
    m = counts.shape[0]
    global_var = np.add.reduceat(residual_sq, starts) / counts
    bin_counts = np.maximum(4, np.minimum(64, counts // 50))
    edges_out: list = [None] * m
    var_out: list = [None] * m
    for n_bins in np.unique(bin_counts).tolist():
        sel = np.flatnonzero(bin_counts == n_bins)
        qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        quant = segmented_quantiles(xs_sorted, starts[sel], counts[sel], qs)
        keep, kept_counts = _dedup_sorted_rows(quant)
        for n_edges in np.unique(kept_counts).tolist():
            inner = kept_counts == n_edges
            ssel = sel[inner]
            edges = quant[inner][keep[inner]].reshape(ssel.size, n_edges)
            rows = _csr_take_rows(offsets, ssel)
            xr = xs[rows]
            rr = residual_sq[rows]
            local_g = np.repeat(np.arange(ssel.size), counts[ssel])
            # codes = searchsorted(edges_g, x, side="left"): the number
            # of edges strictly below x, computed with exact comparisons
            # in blocks so ties land in the same bin as the scalar path.
            codes = np.empty(xr.shape[0], dtype=np.int64)
            block = max(1, _BLOCK_ELEMENTS // max(n_edges, 1))
            for r0 in range(0, xr.shape[0], block):
                r1 = min(r0 + block, xr.shape[0])
                codes[r0:r1] = (
                    edges[local_g[r0:r1]] < xr[r0:r1, None]
                ).sum(axis=1)
            flat_codes = local_g * (n_edges + 1) + codes
            length = ssel.size * (n_edges + 1)
            counts_bins = np.bincount(flat_codes, minlength=length)
            sums_bins = np.bincount(flat_codes, weights=rr, minlength=length)
            counts_bins = counts_bins.reshape(ssel.size, n_edges + 1)
            sums_bins = sums_bins.reshape(ssel.size, n_edges + 1)
            with np.errstate(invalid="ignore"):
                per_bin = np.where(
                    counts_bins > 0,
                    sums_bins / np.maximum(counts_bins, 1),
                    global_var[ssel][:, None],
                )
            for i, g in enumerate(ssel.tolist()):
                edges_out[g] = edges[i]
                var_out[g] = per_bin[i]
    return edges_out, var_out, global_var


# -- nonlinear regressors (chunked map_parallel fallback) --------------------


def _fit_regressor_chunk(payload: tuple) -> list:
    """Fit one chunk of (x, y) group samples (module-level: picklable)."""
    from repro.core.parallel import limit_blas_threads

    limit_blas_threads(1)
    pairs, config = payload
    fitted = []
    for x, y in pairs:
        regressor = _make_regressor(config)
        regressor.fit(x, y)
        fitted.append(regressor)
    return fitted


def _fit_generic_regressors(
    xs: np.ndarray,
    ys: np.ndarray,
    offsets: np.ndarray,
    config: DBEstConfig,
) -> list:
    """Fit nonlinear per-group regressors, fanned over row-weighted chunks.

    Tree and boosted models have no stacked closed form; the fits are the
    same calls the scalar trainer makes (hence bit-identical models), but
    grouped into ``map_parallel`` chunks balanced by row count so a pool
    can overlap them.
    """
    counts = np.diff(offsets)
    segments = [
        (xs[offsets[g]:offsets[g + 1]], ys[offsets[g]:offsets[g + 1]])
        for g in range(counts.shape[0])
    ]
    workers = config.n_workers
    if workers <= 1 or len(segments) <= 1:
        return _fit_regressor_chunk((segments, config))
    bounds = chunk_bounds_weighted(counts.tolist(), workers)
    payloads = [(segments[a:b], config) for a, b in bounds]
    results = map_parallel(
        _fit_regressor_chunk, payloads, workers=workers,
        mode=config.parallel_mode,
    )
    return [regressor for chunk in results for regressor in chunk]


# -- orchestration -----------------------------------------------------------


def _train_batched_models_nd(
    sample_x: np.ndarray,
    sample_y: np.ndarray | None,
    sample_part: GroupPartition,
    modelled_mask: np.ndarray,
    table_name: str,
    x_columns: tuple[str, ...],
    y_column: str | None,
    population: dict,
    config: DBEstConfig,
) -> dict:
    """Multivariate leg of :func:`train_batched_models`.

    Densities are product-kernel KDEs built from the shared vectorised
    passes of :func:`_fit_multivariate_densities`; OLS regressors join a
    ``d + 1``-wide stacked normal-equation solve; everything else (tree /
    boosted / ensemble regressors) runs the same per-group fits the
    scalar loop makes, fanned over row-weighted chunks.
    """
    d = sample_x.shape[1]
    modelled = np.flatnonzero(modelled_mask)
    if modelled.size == 0:
        # All-raw sets never construct a density, so the bandwidth is
        # never consumed — the scalar loop trains them without error.
        return {}
    if not isinstance(config.kde_bandwidth, str):
        # The same contract ColumnSetModel.train enforces per group.
        raise InvalidParameterError(
            f"multivariate predicates need a bandwidth rule name, "
            f"got the fixed bandwidth {config.kde_bandwidth!r}; "
            f"the product-kernel KDE has one bandwidth per dimension"
        )
    # Validates the KDE configuration once and supplies the defaults the
    # trainer mirrors, exactly as the 1-D leg does.
    template = MultivariateKDE(
        bandwidth=config.kde_bandwidth,
        binned=config.kde_binned,
        bins_per_dim=config.kde_bins_per_dim,
        bin_threshold=config.kde_bin_threshold,
    )

    source_rows = sample_part.order[
        _csr_take_rows(sample_part.offsets, modelled)
    ]
    xmat = sample_x[source_rows, :]
    offsets = np.concatenate(
        ([0], np.cumsum(sample_part.counts[modelled]))
    ).astype(np.int64)
    counts = np.diff(offsets)

    density_state = _fit_multivariate_densities(xmat, offsets, config, template)

    ys = None
    regressors: list = [None] * modelled.size
    residual_global = np.zeros(modelled.size)
    generic = False
    fit_regressors = sample_y is not None and y_column is not None
    if fit_regressors:
        ys = np.asarray(sample_y, dtype=np.float64).ravel()[source_rows]
        if config.regressor == "linear":
            design = np.empty((xmat.shape[0], d + 1))
            design[:, 0] = 1.0
            design[:, 1:] = xmat
            coefs = _solve_stacked(design, ys, offsets)
            regressors = [
                LinearRegressor.from_coef(coefs[g])
                for g in range(modelled.size)
            ]
            coef_rows = coefs[np.repeat(np.arange(modelled.size), counts)]
            residual_sq = ys - np.einsum("nk,nk->n", design, coef_rows)
            residual_sq *= residual_sq
            residual_global = np.add.reduceat(residual_sq, offsets[:-1]) / counts
        else:
            forest = None
            if getattr(config, "batched_forest", True):
                from repro.core.batched_forest import fit_forest_regressors

                forest = fit_forest_regressors(xmat, ys, offsets, config)
            if forest is None:
                # "plr" raises inside the per-group fit exactly as the
                # scalar trainer does (piecewise-linear splines are 1-D
                # only); with the forest kernel opted out, tree/boosted/
                # ensemble regressors fit per group as the parity oracle.
                generic = True
                regressors = _fit_generic_regressors(xmat, ys, offsets, config)
            else:
                regressors, forest_pred = forest
                if forest_pred is None:
                    # Ensembles route prediction through a selected
                    # constituent; their residual pass runs per group.
                    generic = True
                else:
                    # Multivariate models keep only the global residual
                    # scalar; the kernel's in-sample predictions are
                    # bit-identical to regressor.predict on each slice.
                    residual_sq = ys - forest_pred
                    residual_sq *= residual_sq
                    for i in range(modelled.size):
                        residual_global[i] = float(
                            np.mean(residual_sq[offsets[i]:offsets[i + 1]])
                        )

    models: dict = {}
    values = (
        sample_part.values.tolist()
        if hasattr(sample_part.values, "tolist")
        else list(sample_part.values)
    )
    for i, g in enumerate(modelled.tolist()):
        value = values[g]
        density = MultivariateKDE.from_fit_state(
            centres=density_state["centres"][i],
            weights=density_state["weights"][i],
            h=density_state["h"][i],
            domain_low=density_state["lo"][i],
            domain_high=density_state["hi"][i],
            n_train=int(counts[i]),
            bandwidth=config.kde_bandwidth,
            binned=config.kde_binned,
            bins_per_dim=config.kde_bins_per_dim,
            bin_threshold=template.bin_threshold,
        )
        model = ColumnSetModel.from_fitted_parts(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            population_size=population[value],
            density=density,
            regressor=regressors[i],
            x_domain=[
                (float(density_state["lo"][i][j]),
                 float(density_state["hi"][i][j]))
                for j in range(d)
            ],
            n_sample=int(counts[i]),
            config=config,
            residual_var_global=float(residual_global[i]),
        )
        if generic and regressors[i] is not None:
            # No stacked residual form for nonlinear regressors: the
            # scalar trainer's own pass on the same rows (global scalar
            # only — multivariate models keep no residual bins).
            seg = slice(offsets[i], offsets[i + 1])
            model._fit_residual_variance(xmat[seg], ys[seg])
        models[value] = model
    return models


def train_batched_models(
    sample_x: np.ndarray,
    sample_y: np.ndarray | None,
    sample_part: GroupPartition,
    modelled_mask: np.ndarray,
    table_name: str,
    x_columns: tuple[str, ...],
    y_column: str | None,
    population: dict,
    config: DBEstConfig,
    group_mask: np.ndarray | None = None,
) -> dict:
    """Build the ``models`` dict of a GroupByModelSet in batched passes.

    Handles 1-D and multivariate predicate sets alike (the latter
    through :func:`_train_batched_models_nd`).  ``sample_x`` must already
    be a float64 ``(n, d)`` matrix and ``sample_part`` the sample's
    :class:`GroupPartition` aligned to the full table's group values;
    ``modelled_mask`` flags the groups whose sample is large enough to
    model (the rest stay raw).  ``group_mask`` further restricts the fit
    to a subset of groups (the streaming-refresh dirty set): only the
    masked groups' models are built and returned, from exactly the same
    vectorised passes — a full train is the ``group_mask=None``
    (everything dirty) case.
    """
    t0 = perf_counter()
    if group_mask is not None:
        modelled_mask = np.logical_and(modelled_mask, group_mask)
    if sample_x.shape[1] != 1:
        models = _train_batched_models_nd(
            sample_x, sample_y, sample_part, modelled_mask,
            table_name, x_columns, y_column, population, config,
        )
        _record_train_metrics(
            t0,
            int(sample_part.counts[modelled_mask].sum()),
            len(models),
        )
        return models
    modelled = np.flatnonzero(modelled_mask)
    if modelled.size == 0:
        return {}
    # Validates the KDE configuration once (the scalar path validates it
    # per group) and supplies the class defaults the trainer mirrors.
    template = KernelDensityEstimator(
        bandwidth=config.kde_bandwidth,
        binned=config.kde_binned,
        n_bins=config.kde_bins,
        bin_threshold=config.kde_bin_threshold,
    )

    # One gather collects all modelled rows in group-major original order.
    source_rows = sample_part.order[
        _csr_take_rows(sample_part.offsets, modelled)
    ]
    xs = sample_x[:, 0][source_rows]
    offsets = np.concatenate(
        ([0], np.cumsum(sample_part.counts[modelled]))
    ).astype(np.int64)
    counts = np.diff(offsets)

    fit_regressors = sample_y is not None and y_column is not None
    stacked = fit_regressors and config.regressor in _STACKED_REGRESSORS
    needs_sorted = stacked or config.kde_bandwidth == "silverman"
    xs_sorted = None
    if needs_sorted:
        group_ids = np.repeat(np.arange(modelled.size), counts)
        xs_sorted = xs[np.lexsort((xs, group_ids))]

    density_state = _fit_densities(xs, offsets, xs_sorted, config, template)

    ys = None
    regressors: list = [None] * modelled.size
    residual_edges: list = [None] * modelled.size
    residual_var: list = [None] * modelled.size
    residual_global = np.zeros(modelled.size)
    generic = False
    if fit_regressors:
        ys = np.asarray(sample_y, dtype=np.float64).ravel()[source_rows]
        if stacked:
            n_knots = PiecewiseLinearRegressor().n_knots
            coefs, knots, pred = _fit_stacked_regressors(
                xs, ys, offsets, xs_sorted, config.regressor, n_knots
            )
            if config.regressor == "plr":
                regressors = [
                    PiecewiseLinearRegressor.from_state(
                        knots[g], coefs[g], n_knots=n_knots
                    )
                    for g in range(modelled.size)
                ]
            else:
                regressors = [
                    LinearRegressor.from_coef(coefs[g])
                    for g in range(modelled.size)
                ]
            residual_sq = ys - pred
            residual_sq *= residual_sq
            residual_edges, residual_var, residual_global = (
                _fit_residual_states(xs, offsets, xs_sorted, residual_sq)
            )
        else:
            forest = None
            if getattr(config, "batched_forest", True):
                from repro.core.batched_forest import fit_forest_regressors

                forest = fit_forest_regressors(
                    xs[:, None], ys, offsets, config
                )
            if forest is None:
                generic = True
                regressors = _fit_generic_regressors(xs, ys, offsets, config)
            else:
                regressors, forest_pred = forest
                if forest_pred is None:
                    # Ensembles route prediction through a selected
                    # constituent; their residual pass runs per group.
                    generic = True
                else:
                    # The kernel's in-sample predictions are bit-identical
                    # to regressor.predict on each group slice, so the
                    # stacked residual pass applies as-is.
                    residual_sq = ys - forest_pred
                    residual_sq *= residual_sq
                    if xs_sorted is None:
                        group_ids = np.repeat(
                            np.arange(modelled.size), counts
                        )
                        xs_sorted = xs[np.lexsort((xs, group_ids))]
                    residual_edges, residual_var, residual_global = (
                        _fit_residual_states(
                            xs, offsets, xs_sorted, residual_sq
                        )
                    )

    models: dict = {}
    values = (
        sample_part.values.tolist()
        if hasattr(sample_part.values, "tolist")
        else list(sample_part.values)
    )
    for i, g in enumerate(modelled.tolist()):
        value = values[g]
        density = KernelDensityEstimator.from_fit_state(
            centres=density_state["centres"][i],
            weights=density_state["weights"][i],
            h=density_state["h"][i],
            support=(density_state["sup_lo"][i], density_state["sup_hi"][i]),
            reflect=bool(density_state["reflect"][i]),
            point_mass=(
                float(density_state["lo"][i])
                if density_state["degenerate"][i]
                else None
            ),
            n_train=int(counts[i]),
            bandwidth=config.kde_bandwidth,
            binned=config.kde_binned,
            n_bins=config.kde_bins,
            bin_threshold=template.bin_threshold,
        )
        model = ColumnSetModel.from_fitted_parts(
            table_name=table_name,
            x_columns=tuple(x_columns),
            y_column=y_column,
            population_size=population[value],
            density=density,
            regressor=regressors[i],
            x_domain=[
                (float(density_state["lo"][i]), float(density_state["hi"][i]))
            ],
            n_sample=int(counts[i]),
            config=config,
            residual_edges=residual_edges[i],
            residual_var=residual_var[i],
            residual_var_global=float(residual_global[i]),
        )
        if generic and regressors[i] is not None:
            # Nonlinear regressors have no stacked residual form; this is
            # the scalar trainer's own pass on the same data.
            seg = slice(offsets[i], offsets[i + 1])
            model._fit_residual_variance(xs[seg][:, None], ys[seg])
        models[value] = model
    _record_train_metrics(t0, int(xs.size), int(modelled.size))
    return models


def export_group_state(model_set) -> tuple[dict, dict] | None:
    """Flattened evaluator state of a trained group-by set, or None.

    The train-side export hook for the zero-copy model store: builds (or
    reuses) the set's :class:`~repro.core.batched.BatchedGroupEvaluator`
    and returns its ``(meta, segments)`` pair with every segment made
    contiguous, ready to be written as memory-mappable buffers.  Returns
    None when the set cannot be stacked (mixed regressors, non-Simpson
    integration, ...) or when any stacked array holds Python objects —
    those sets stay on the pickle record format.
    """
    evaluator = model_set.batched_evaluator()
    if evaluator is None:
        return None
    meta, segments = evaluator.export_mapped_state()
    packed = {}
    for name, arr in segments.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.hasobject:
            return None
        packed[name] = arr
    return meta, packed
