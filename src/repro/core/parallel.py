"""Parallel evaluation helpers.

The paper (§4.7) evaluates per-group models in parallel, noting the
Python GIL forces a process-based workaround for CPU-bound work.  We
provide both modes; ``thread`` is the default because our group
evaluation spends most of its time inside numpy kernels that release the
GIL, so threads capture most of the speedup without pickling models
across process boundaries.
"""

from __future__ import annotations

import atexit
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.errors import InvalidParameterError

# Persistent pools keyed by (mode, workers).  Spawning a process pool costs
# hundreds of milliseconds — more than evaluating all 57 group models of
# the paper's GROUP BY experiment — so pools are created once and reused
# for the life of the interpreter.
_POOLS: dict[tuple[str, int], Executor] = {}

_BLAS_LIMITED = False

# Symbol names used by the OpenBLAS builds numpy/scipy ship with.
_OPENBLAS_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
    "goto_set_num_threads",
)


def limit_blas_threads(n: int = 1) -> bool:
    """Cap the loaded BLAS's internal thread pool (idempotent).

    Worker processes running DBEst queries concurrently must not each
    spin up a full-width OpenBLAS pool: P workers x C BLAS threads
    oversubscribes the machine and makes parallel execution *slower* than
    sequential.  The BLAS is already loaded when workers fork, so env
    vars are too late; instead the thread count is set through the
    library's own entry point, found via /proc/self/maps.
    """
    global _BLAS_LIMITED
    if _BLAS_LIMITED:
        return True
    import ctypes

    paths = set()
    try:
        with open("/proc/self/maps") as maps:
            for line in maps:
                if "openblas" in line.lower() and ".so" in line:
                    paths.add(line.strip().split()[-1])
    except OSError:
        return False
    for path in paths:
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _OPENBLAS_SYMBOLS:
            setter = getattr(lib, symbol, None)
            if setter is not None:
                setter(n)
                _BLAS_LIMITED = True
                return True
    return False


def _shutdown_pools() -> None:
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(_shutdown_pools)


def get_pool(mode: str, workers: int) -> Executor:
    """A persistent worker pool for the given mode and size."""
    if mode not in ("thread", "process"):
        raise InvalidParameterError(
            f"mode must be 'thread' or 'process', got {mode!r}"
        )
    if workers < 2:
        raise InvalidParameterError(f"pools need workers >= 2, got {workers}")
    key = (mode, workers)
    pool = _POOLS.get(key)
    if pool is None:
        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        pool = pool_cls(max_workers=workers)
        _POOLS[key] = pool
    return pool


def map_parallel(
    fn: Callable,
    items: Sequence,
    workers: int = 1,
    mode: str = "thread",
) -> list:
    """Apply ``fn`` to every item, optionally across a worker pool.

    Results preserve input order.  ``workers <= 1`` runs sequentially in
    the calling thread (DBEst's default single-thread execution model);
    larger counts reuse a persistent pool from :func:`get_pool`.  With
    ``mode="process"`` both ``fn`` and the items must be picklable.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if mode not in ("thread", "process"):
        raise InvalidParameterError(
            f"mode must be 'thread' or 'process', got {mode!r}"
        )
    pool = get_pool(mode, workers)
    return list(pool.map(fn, items))


def chunk_bounds(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """At most ``n_chunks`` contiguous, non-empty (start, end) index ranges.

    The index form lets callers slice flat array segments (the batched
    group-by evaluator ships CSR slices to workers instead of pickled
    per-group models); :func:`chunk_items` keeps the item-list form.
    """
    if n_chunks < 1:
        raise InvalidParameterError(f"n_chunks must be >= 1, got {n_chunks}")
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    size, rest = divmod(n, n_chunks)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < rest else 0)
        if end > start:
            bounds.append((start, end))
        start = end
    return bounds


def chunk_items(items: Sequence, n_chunks: int) -> list[list]:
    """Split items into at most ``n_chunks`` contiguous, non-empty chunks."""
    items = list(items)
    return [items[a:b] for a, b in chunk_bounds(len(items), n_chunks)]


def chunk_bounds_weighted(
    weights: Sequence[float], n_chunks: int
) -> list[tuple[int, int]]:
    """Contiguous (start, end) ranges balancing total *weight* per chunk.

    :func:`chunk_bounds` balances item counts; this balances a per-item
    cost measure instead (the batched trainer weighs groups by row count
    so one giant group does not serialise a whole worker chunk behind
    many small ones).  The heaviest chunk is minimised — the classic
    linear-partition problem, solved by binary search on chunk capacity —
    and while that leaves fewer than ``n_chunks`` chunks, the heaviest
    splittable chunk is subdivided at its weighted midpoint so spare
    workers still get work.  Every chunk is non-empty and at most
    ``n_chunks`` are returned.
    """
    if n_chunks < 1:
        raise InvalidParameterError(f"n_chunks must be >= 1, got {n_chunks}")
    weights = [max(float(w), 0.0) for w in weights]
    n = len(weights)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    total = sum(weights)
    if total <= 0.0:
        return chunk_bounds(n, n_chunks)

    def chunks_needed(cap: float) -> int:
        needed, acc = 1, 0.0
        for weight in weights:
            if acc > 0.0 and acc + weight > cap:
                needed += 1
                acc = weight
            else:
                acc += weight
        return needed

    lo, cap = max(weights), total  # cap = total is always feasible
    for _ in range(60):
        mid = 0.5 * (lo + cap)
        if chunks_needed(mid) <= n_chunks:
            cap = mid
        else:
            lo = mid

    bounds: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    for i, weight in enumerate(weights):
        if acc > 0.0 and acc + weight > cap and len(bounds) < n_chunks - 1:
            bounds.append((start, i))
            start = i
            acc = 0.0
        acc += weight
    bounds.append((start, n))

    while len(bounds) < n_chunks:
        best = None
        for idx, (a, b) in enumerate(bounds):
            if b - a < 2:
                continue
            weight = sum(weights[a:b])
            if best is None or weight > best[0]:
                best = (weight, idx)
        if best is None:
            break
        weight, idx = best
        a, b = bounds[idx]
        acc = 0.0
        cut = b - 1
        for i in range(a, b - 1):
            acc += weights[i]
            if acc >= 0.5 * weight:
                cut = i + 1
                break
        bounds[idx:idx + 1] = [(a, cut), (cut, b)]
    return bounds
