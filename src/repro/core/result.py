"""Query result container."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryResult:
    """Answer to one analytical query.

    ``values`` maps the aggregate's display string (e.g. ``"SUM(price)"``)
    to either a float (scalar query) or a dict of group value -> float
    (GROUP BY query).  ``source`` records whether models answered the
    query (``"model"``) or it was routed to the fallback engine
    (``"fallback"``); ``elapsed_seconds`` is wall-clock execution time
    excluding parsing.

    ``degraded`` is set by the serving layer when the model path was
    unavailable (circuit breaker open, corrupt record, deadline
    pressure) and the answer came from a degraded engine instead —
    stratified/uniform AQP over a fresh sample, or an exact scan;
    ``degraded_reason`` names why and which engine served it.  Degraded
    answers are approximate within the advisor's error bound rather
    than bit-identical to the model path.
    """

    values: dict[str, float | dict] = field(default_factory=dict)
    source: str = "model"
    elapsed_seconds: float = 0.0
    sql: str = ""
    degraded: bool = False
    degraded_reason: str = ""

    def scalar(self, aggregate: str | None = None) -> float:
        """The single scalar answer; convenience for one-aggregate queries."""
        if aggregate is None:
            if len(self.values) != 1:
                raise KeyError(
                    f"result has {len(self.values)} aggregates; name one of "
                    f"{list(self.values)}"
                )
            value = next(iter(self.values.values()))
        else:
            value = self.values[aggregate]
        if isinstance(value, dict):
            raise KeyError("result is grouped; use .groups() instead of .scalar()")
        return value

    def groups(self, aggregate: str | None = None) -> dict:
        """The per-group answers of a GROUP BY query."""
        if aggregate is None:
            if len(self.values) != 1:
                raise KeyError(
                    f"result has {len(self.values)} aggregates; name one of "
                    f"{list(self.values)}"
                )
            value = next(iter(self.values.values()))
        else:
            value = self.values[aggregate]
        if not isinstance(value, dict):
            raise KeyError("result is scalar; use .scalar() instead of .groups()")
        return value
