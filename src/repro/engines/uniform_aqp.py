"""VerdictDB-like sample-based AQP engine.

Mirrors the mechanism of VerdictDB (Park et al., SIGMOD 2018) as used in
the paper's comparisons:

* offline **uniform samples** per popular table, kept in memory and
  scanned at query time;
* **hash (universe) samples** on join keys so joins of samples remain
  unbiased joins of the data;
* Horvitz–Thompson **scaling** of COUNT/SUM by the inverse sampling
  fraction; AVG and the other ratio statistics taken directly from the
  sample;
* CLT-based **confidence intervals**, available via
  :meth:`confidence_interval` after each query.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import BaseEngine
from repro.engines.bounds import clt_half_width
from repro.errors import InvalidParameterError, QueryExecutionError
from repro.sampling.hashed import hash_sample_table
from repro.sampling.uniform import uniform_sample_table
from repro.sql.ast import Query
from repro.storage.join import hash_join
from repro.storage.predicates import evaluate_predicates
from repro.storage.table import Table


class UniformAQPEngine(BaseEngine):
    """Sample-based AQP with uniform per-table samples and universe joins."""

    name = "uniform_aqp"

    def __init__(
        self,
        sample_size: int = 100_000,
        confidence: float = 0.95,
        random_seed: int | None = None,
    ) -> None:
        super().__init__()
        if sample_size <= 0:
            raise InvalidParameterError(
                f"sample_size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self.confidence = confidence
        self._rng = np.random.default_rng(random_seed)
        self._samples: dict[str, Table] = {}
        self._fractions: dict[str, float] = {}
        self._hash_samples: dict[tuple[str, str], tuple[Table, float]] = {}
        self.last_intervals: dict[str, tuple[float, float]] = {}

    # -- state building ------------------------------------------------------

    def prepare_table(self, name: str, sample_size: int | None = None) -> float:
        """Draw and keep the uniform sample for one registered table.

        Returns the state-building (sampling) time in seconds so the
        overhead benches can report it.
        """
        import time

        table = self._get_table(name)
        size = sample_size or self.sample_size
        start = time.perf_counter()
        sample = uniform_sample_table(table, size, rng=self._rng)
        elapsed = time.perf_counter() - start
        self._samples[name] = sample
        self._fractions[name] = sample.n_rows / max(table.n_rows, 1)
        return elapsed

    def prepare_join(
        self,
        name: str,
        join_key: str,
        key_fraction: float = 0.01,
        seed: int = 17,
    ) -> float:
        """Build the universe (hash) sample used when ``name`` is joined."""
        import time

        table = self._get_table(name)
        start = time.perf_counter()
        sample = hash_sample_table(table, join_key, key_fraction, seed=seed)
        elapsed = time.perf_counter() - start
        self._hash_samples[(name, join_key)] = (sample, key_fraction)
        return elapsed

    def state_size_bytes(self) -> int:
        """Memory held by all prepared samples (space-overhead metric)."""
        total = sum(s.nbytes() for s in self._samples.values())
        total += sum(s.nbytes() for s, _ in self._hash_samples.values())
        return total

    # -- execution -----------------------------------------------------------

    def _sample_for(self, name: str) -> tuple[Table, float]:
        if name in self._samples:
            return self._samples[name], self._fractions[name]
        raise QueryExecutionError(
            f"no sample prepared for table {name!r}; call prepare_table() first"
        )

    def _evaluate(self, query: Query) -> dict:
        self.last_intervals = {}
        if query.joins:
            table, scale = self._joined_sample(query)
        else:
            sample, fraction = self._sample_for(query.table)
            table, scale = sample, 1.0 / fraction
        values = self._aggregate_table(table, query, scale=scale)
        self._attach_intervals(table, query)
        return values

    def _joined_sample(self, query: Query) -> tuple[Table, float]:
        """Join per-table samples at query time (the cost DBEst avoids).

        The fact table uses its universe sample when one was prepared for
        the join key; dimension tables that were never sampled join in
        full (VerdictDB joins its 10m-row fact sample with the actual
        60-row dimension table in the paper's Fig. 20 setup).
        """
        scale = 1.0
        left_key0 = query.joins[0].left_key
        hashed = self._hash_samples.get((query.table, left_key0))
        if hashed is not None:
            table, fraction = hashed
            scale /= fraction
        elif query.table in self._samples:
            table, fraction = self._sample_for(query.table)
            scale /= fraction
        else:
            table = self._get_table(query.table)

        for join in query.joins:
            right_hashed = self._hash_samples.get((join.table, join.right_key))
            if right_hashed is not None:
                right, _fraction = right_hashed
                # Universe sampling with a shared hash keeps matching keys
                # on both sides; the inclusion probability is counted once.
            elif join.table in self._samples:
                right, fraction = self._sample_for(join.table)
                scale /= fraction
            else:
                right = self._get_table(join.table)
            table = hash_join(table, right, join.left_key, join.right_key)
        return table, scale

    def _attach_intervals(self, table: Table, query: Query) -> None:
        """CLT confidence intervals for scalar AVG/SUM/COUNT answers."""
        if query.group_by is not None:
            return
        mask = evaluate_predicates(
            table,
            ranges=[(r.column, r.low, r.high) for r in query.ranges],
            equalities=[(e.column, e.value) for e in query.equalities],
        )
        n = int(mask.sum())
        if n < 2:
            return
        for aggregate in query.aggregates:
            if aggregate.func != "AVG" or aggregate.column is None:
                continue
            data = table[aggregate.column][mask]
            mean = float(data.mean())
            half = clt_half_width(float(data.std()), n, self.confidence)
            self.last_intervals[str(aggregate)] = (mean - half, mean + half)
