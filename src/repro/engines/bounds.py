"""A-priori and a-posteriori error bounds for sample-based AQP.

Sampling-based engines can promise error bounds that model-based DBEst
cannot (a limitation the paper concedes).  This module implements the two
bounds the paper discusses:

* :func:`hoeffding_count_relative_error` — the Appendix C formula
  ``1.22 / (s * sqrt(n))`` for the 0.9-probability Hoeffding bound on a
  COUNT's relative error at selectivity ``s`` and sample size ``n``.
* :func:`clt_half_width` — central-limit-theorem confidence half-width
  for a sample mean, used by the VerdictDB-like engine to attach
  confidence intervals to its answers.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

# Two-sided standard-normal quantiles for common confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def hoeffding_count_relative_error(selectivity: float, n: int) -> float:
    """0.9-probability Hoeffding bound on COUNT relative error.

    ``selectivity`` is the fraction of rows passing all predicates and
    ``n`` the sample size (paper Appendix C, citing [20]).
    """
    if not 0.0 < selectivity <= 1.0:
        raise InvalidParameterError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    if n <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {n}")
    return 1.22 / (selectivity * math.sqrt(n))


def clt_half_width(
    sample_std: float,
    n: int,
    confidence: float = 0.95,
) -> float:
    """CLT confidence-interval half width ``z * s / sqrt(n)`` for a mean."""
    if n <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {n}")
    if sample_std < 0:
        raise InvalidParameterError(f"std must be >= 0, got {sample_std}")
    z = _Z_VALUES.get(round(confidence, 2))
    if z is None:
        raise InvalidParameterError(
            f"confidence must be one of {sorted(_Z_VALUES)}, got {confidence}"
        )
    return z * sample_std / math.sqrt(n)
