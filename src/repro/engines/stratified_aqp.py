"""BlinkDB-like AQP engine over stratified samples.

BlinkDB (Agarwal et al., EuroSys 2013) keeps stratified samples on the
columns appearing in GROUP BY/WHERE clauses of the expected workload:
every stratum (distinct value of the stratification column) contributes
at most a cap of rows, so rare groups stay represented.  Rows are
re-weighted by their stratum's inverse sampling fraction when estimating
COUNT and SUM.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import BaseEngine, exact_aggregate
from repro.errors import InvalidParameterError, QueryExecutionError
from repro.sampling.stratified import stratified_sample_indices
from repro.sql.ast import Query
from repro.storage.predicates import evaluate_predicates
from repro.storage.table import Table


class StratifiedAQPEngine(BaseEngine):
    """Stratified-sample AQP with per-stratum Horvitz–Thompson weights."""

    name = "stratified_aqp"

    def __init__(
        self,
        cap_per_stratum: int = 2000,
        random_seed: int | None = None,
    ) -> None:
        super().__init__()
        if cap_per_stratum <= 0:
            raise InvalidParameterError(
                f"cap_per_stratum must be positive, got {cap_per_stratum}"
            )
        self.cap_per_stratum = cap_per_stratum
        self._rng = np.random.default_rng(random_seed)
        self._samples: dict[str, Table] = {}
        self._stratify_on: dict[str, str] = {}
        self._weights: dict[str, dict] = {}

    def prepare_table(
        self,
        name: str,
        stratify_on: str,
        cap_per_stratum: int | None = None,
        sample_size: int | None = None,
    ) -> float:
        """Build the stratified sample for one table.

        ``sample_size`` (total target rows) is translated into a per-
        stratum cap when given; otherwise ``cap_per_stratum`` applies.
        Returns the sampling time in seconds.
        """
        import time

        table = self._get_table(name)
        strata = table[stratify_on]
        if sample_size is not None:
            n_strata = int(np.unique(strata).shape[0])
            cap = max(1, sample_size // max(n_strata, 1))
        else:
            cap = cap_per_stratum or self.cap_per_stratum

        start = time.perf_counter()
        indices = stratified_sample_indices(strata, cap, rng=self._rng)
        sample = table.take(indices, name=f"{name}_stratified")
        elapsed = time.perf_counter() - start

        # Per-stratum inverse sampling fractions.
        full_values, full_counts = np.unique(strata, return_counts=True)
        kept_values, kept_counts = np.unique(sample[stratify_on], return_counts=True)
        kept = dict(zip(kept_values.tolist(), kept_counts.tolist()))
        weights = {
            value: full / max(kept.get(value, 0), 1)
            for value, full in zip(full_values.tolist(), full_counts.tolist())
        }
        self._samples[name] = sample
        self._stratify_on[name] = stratify_on
        self._weights[name] = weights
        return elapsed

    def state_size_bytes(self) -> int:
        return sum(s.nbytes() for s in self._samples.values())

    def _evaluate(self, query: Query) -> dict:
        if query.joins:
            raise QueryExecutionError(
                "the stratified baseline does not support joins; "
                "use UniformAQPEngine for join comparisons"
            )
        sample = self._samples.get(query.table)
        if sample is None:
            raise QueryExecutionError(
                f"no stratified sample prepared for {query.table!r}; "
                "call prepare_table() first"
            )
        stratify_on = self._stratify_on[query.table]
        weights = self._weights[query.table]

        mask = evaluate_predicates(
            sample,
            ranges=[(r.column, r.low, r.high) for r in query.ranges],
            equalities=[(e.column, e.value) for e in query.equalities],
        )
        selected = sample.filter(mask)
        strata = selected[stratify_on]
        row_weights = np.asarray(
            [weights.get(value, 1.0) for value in strata.tolist()]
        )

        values: dict[str, float | dict] = {}
        if query.group_by is None:
            for aggregate in query.aggregates:
                values[str(aggregate)] = self._weighted_aggregate(
                    selected, aggregate, row_weights
                )
            return values

        groups = selected[query.group_by]
        for aggregate in query.aggregates:
            per_group: dict = {}
            for value in np.unique(groups).tolist():
                in_group = groups == value
                per_group[value] = self._weighted_aggregate(
                    selected.filter(in_group), aggregate, row_weights[in_group]
                )
            values[str(aggregate)] = per_group
        return values

    @staticmethod
    def _weighted_aggregate(
        selected: Table, aggregate, row_weights: np.ndarray
    ) -> float:
        """Horvitz–Thompson estimate under per-row stratum weights."""
        func = aggregate.func
        if func == "COUNT":
            return float(row_weights.sum())
        column = aggregate.column or selected.column_names[0]
        data = selected[column]
        if data.shape[0] == 0:
            return 0.0 if func == "SUM" else float("nan")
        if func == "SUM":
            return float((data * row_weights).sum())
        if func == "AVG":
            return float((data * row_weights).sum() / row_weights.sum())
        # Dispersion/percentile statistics fall back to unweighted sample
        # estimates, as BlinkDB's supported AF set is COUNT/SUM/AVG.
        return exact_aggregate(data, aggregate)
