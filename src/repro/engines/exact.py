"""Exact query engine.

Serves two roles in the reproduction:

1. **Ground truth** — registered with full tables, it computes the exact
   answers relative errors are measured against.
2. **Approximate MonetDB** (paper Appendix C) — registered with a uniform
   *sample* and the population size via :meth:`register_sample`, it
   becomes an exact-answer engine operating on samples: fast columnar
   scans, COUNT/SUM scaled by N/n, no error model.
"""

from __future__ import annotations

from repro.engines.base import BaseEngine
from repro.errors import InvalidParameterError
from repro.sql.ast import Query
from repro.storage.join import hash_join
from repro.storage.table import Table


class ExactEngine(BaseEngine):
    """Exact columnar evaluation with optional per-table N/n scaling."""

    name = "exact"

    def __init__(self) -> None:
        super().__init__()
        self._population: dict[str, int] = {}

    def register_sample(self, sample: Table, population_size: int) -> None:
        """Register a sample standing in for a table of ``population_size`` rows."""
        if population_size < sample.n_rows:
            raise InvalidParameterError(
                f"population_size {population_size} is smaller than the "
                f"sample ({sample.n_rows} rows)"
            )
        self.register_table(sample)
        self._population[sample.name] = int(population_size)

    def _scale(self, name: str, table: Table) -> float:
        population = self._population.get(name)
        if population is None or table.n_rows == 0:
            return 1.0
        return population / table.n_rows

    def _evaluate(self, query: Query) -> dict:
        table = self._get_table(query.table)
        scale = self._scale(query.table, table)
        for join in query.joins:
            right = self._get_table(join.table)
            # Scaling composes multiplicatively when joining samples; the
            # ground-truth configuration has every factor equal to 1.
            scale *= self._scale(join.table, right)
            table = hash_join(table, right, join.left_key, join.right_key)
        return self._aggregate_table(table, query, scale=scale)
