"""Baseline query engines the paper compares DBEst against.

* :class:`ExactEngine` — exact columnar evaluation over full tables (the
  ground-truth oracle).  Pointed at samples with a known population size,
  it becomes the "approximate MonetDB" configuration of Appendix C.
* :class:`UniformAQPEngine` — VerdictDB-like sample-based AQP: offline
  uniform samples per table, hash (universe) samples for join keys,
  Horvitz–Thompson scaling for COUNT/SUM, and CLT confidence intervals.
* :class:`StratifiedAQPEngine` — BlinkDB-like AQP over stratified samples
  with per-stratum weights.
"""

from repro.engines.base import BaseEngine
from repro.engines.bounds import clt_half_width, hoeffding_count_relative_error
from repro.engines.exact import ExactEngine
from repro.engines.online_aqp import OnlineAQPEngine
from repro.engines.stratified_aqp import StratifiedAQPEngine
from repro.engines.uniform_aqp import UniformAQPEngine

__all__ = [
    "BaseEngine",
    "ExactEngine",
    "OnlineAQPEngine",
    "StratifiedAQPEngine",
    "UniformAQPEngine",
    "clt_half_width",
    "hoeffding_count_relative_error",
]
