"""Online-sampling AQP engine (QuickR-like).

The paper's architecture routes queries DBEst has no models for to "an
underlying system in the level below ... another AQP engine (e.g., one
with online sampling, QuickR)".  This engine implements that class: no
offline state at all — each query draws a fresh uniform sample from the
base table, answers from it with Horvitz–Thompson scaling, and throws
the sample away.  The paper notes such engines deliver only ~2x
speedups; here the cost shows up as per-query sampling latency growing
with the base table.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import BaseEngine
from repro.errors import InvalidParameterError
from repro.sampling.reservoir import reservoir_sample_table
from repro.sql.ast import Query
from repro.storage.join import hash_join


class OnlineAQPEngine(BaseEngine):
    """Sample-at-query-time AQP with no prebuilt state."""

    name = "online_aqp"

    def __init__(
        self,
        sample_size: int = 10_000,
        random_seed: int | None = None,
    ) -> None:
        super().__init__()
        if sample_size <= 0:
            raise InvalidParameterError(
                f"sample_size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._rng = np.random.default_rng(random_seed)

    def state_size_bytes(self) -> int:
        """Online engines keep nothing between queries."""
        return 0

    def _evaluate(self, query: Query) -> dict:
        table = self._get_table(query.table)
        for join in query.joins:
            # Online engines must join before sampling (sampling the fact
            # side first would break join semantics without key-synchronised
            # hashing, which requires prebuilt state by definition).
            table = hash_join(
                table, self._get_table(join.table), join.left_key, join.right_key
            )
        population = table.n_rows
        sample = reservoir_sample_table(table, self.sample_size, rng=self._rng)
        scale = population / max(sample.n_rows, 1)
        return self._aggregate_table(sample, query, scale=scale)
