"""Shared machinery for the baseline engines.

All engines share the same public contract as DBEst: register tables,
then ``execute(sql_or_query) -> QueryResult``.  This module also houses
the exact aggregate evaluation over numpy arrays that both the exact
engine and the sample-based engines (after scaling) rely on.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.core.result import QueryResult
from repro.errors import (
    InvalidParameterError,
    QueryExecutionError,
    UnknownTableError,
)
from repro.sql.ast import AggregateCall, Query
from repro.sql.parser import parse_query
from repro.sql.validator import validate_query
from repro.storage.predicates import evaluate_predicates
from repro.storage.table import Table


def exact_aggregate(
    values: np.ndarray,
    aggregate: AggregateCall,
    scale: float = 1.0,
) -> float:
    """Exact aggregate over selected values, with optional N/n scaling.

    ``scale`` is the inverse sampling fraction: COUNT and SUM are scaled
    (they estimate population totals), AVG/VARIANCE/STDDEV/PERCENTILE are
    not (they estimate population ratios, which uniform samples estimate
    directly).
    """
    func = aggregate.func
    if func == "COUNT":
        return float(values.shape[0]) * scale
    if values.shape[0] == 0:
        return 0.0 if func == "SUM" else float("nan")
    if func == "SUM":
        return float(values.sum()) * scale
    if func == "AVG":
        return float(values.mean())
    if func == "VARIANCE":
        return float(values.var())
    if func == "STDDEV":
        return float(values.std())
    if func == "PERCENTILE":
        return float(np.quantile(values, aggregate.parameter))
    raise QueryExecutionError(f"unsupported aggregate {func!r}")


class BaseEngine(ABC):
    """Common table registry + query plumbing for baseline engines."""

    name = "base"

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}

    def register_table(self, table: Table) -> None:
        if not table.name:
            raise InvalidParameterError("tables must be named to be registered")
        self.tables[table.name] = table

    def _get_table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def execute(self, sql: str | Query) -> QueryResult:
        """Parse (if needed), validate, time, and evaluate a query."""
        query = parse_query(sql) if isinstance(sql, str) else sql
        validate_query(query)
        start = time.perf_counter()
        values = self._evaluate(query)
        elapsed = time.perf_counter() - start
        return QueryResult(
            values=values,
            source=self.name,
            elapsed_seconds=elapsed,
            sql=sql if isinstance(sql, str) else query.to_sql(),
        )

    @abstractmethod
    def _evaluate(self, query: Query) -> dict:
        """Produce the ``values`` dict for a validated query."""

    # -- shared evaluation over a materialised table ------------------------

    @staticmethod
    def _aggregate_table(
        table: Table,
        query: Query,
        scale: float = 1.0,
        group_scales: dict | None = None,
    ) -> dict:
        """Evaluate every aggregate of ``query`` over ``table``.

        ``scale`` applies to COUNT/SUM; ``group_scales`` overrides the
        scale per group value (used by stratified samples, where each
        stratum has its own sampling fraction).
        """
        mask = evaluate_predicates(
            table,
            ranges=[(r.column, r.low, r.high) for r in query.ranges],
            equalities=[(e.column, e.value) for e in query.equalities],
        )
        selected = table.filter(mask)

        values: dict[str, float | dict] = {}
        if query.group_by is None:
            for aggregate in query.aggregates:
                column = aggregate.column or selected.column_names[0]
                values[str(aggregate)] = exact_aggregate(
                    selected[column], aggregate, scale=scale
                )
            return values

        groups = selected[query.group_by]
        group_values = np.unique(groups)
        for aggregate in query.aggregates:
            column = aggregate.column or selected.column_names[0]
            data = selected[column]
            per_group: dict = {}
            for value in group_values.tolist():
                in_group = groups == value
                group_scale = (
                    group_scales.get(value, scale)
                    if group_scales is not None
                    else scale
                )
                per_group[value] = exact_aggregate(
                    data[in_group], aggregate, scale=group_scale
                )
            values[str(aggregate)] = per_group
        return values
