"""Hash join over columnar tables.

DBEst precomputes join results before sampling and model building (paper
§2.2); the baseline engines join samples at query time.  Both paths use
this single equi-join implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaMismatchError
from repro.storage.table import Table


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    name: str = "",
    suffix: str = "_r",
) -> Table:
    """Inner equi-join of ``left`` and ``right`` on the given key columns.

    The output contains every column of ``left`` followed by every column
    of ``right`` except its key (the key values are equal by definition).
    Right-side columns whose names collide with a left-side column are
    renamed with ``suffix``.

    The implementation builds a hash index over the smaller input and
    probes with the larger one, then materialises matching row-index pairs
    and gathers columns — the standard textbook hash join, vectorised with
    numpy for the gather phase.
    """
    left_values = left[left_key]
    right_values = right[right_key]
    if left_values.dtype.kind not in ("i", "u", "f", "U") or (
        right_values.dtype.kind not in ("i", "u", "f", "U")
    ):
        raise SchemaMismatchError("join keys must be numeric or string columns")

    # Build on the smaller side, probe with the larger.
    if left.n_rows <= right.n_rows:
        build_values, probe_values = left_values, right_values
        build_is_left = True
    else:
        build_values, probe_values = right_values, left_values
        build_is_left = False

    index: dict[object, list[int]] = {}
    for row, key in enumerate(build_values.tolist()):
        index.setdefault(key, []).append(row)

    build_rows: list[int] = []
    probe_rows: list[int] = []
    for row, key in enumerate(probe_values.tolist()):
        matches = index.get(key)
        if matches:
            build_rows.extend(matches)
            probe_rows.extend([row] * len(matches))

    build_idx = np.asarray(build_rows, dtype=np.intp)
    probe_idx = np.asarray(probe_rows, dtype=np.intp)
    left_idx = build_idx if build_is_left else probe_idx
    right_idx = probe_idx if build_is_left else build_idx

    columns: dict[str, np.ndarray] = {}
    for cname in left.column_names:
        columns[cname] = left[cname][left_idx]
    for cname in right.column_names:
        if cname == right_key:
            continue
        out_name = cname if cname not in columns else cname + suffix
        columns[out_name] = right[cname][right_idx]

    join_name = name or f"{left.name}_join_{right.name}"
    return Table(columns, name=join_name)
