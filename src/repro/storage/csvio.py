"""CSV import/export for columnar tables.

DBEst's architecture note (paper §2.1) says the storage layer can be "just
a local FS" holding csv files; this module provides that path.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.storage.table import Table


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to ``path`` with a header row."""
    path = Path(path)
    names = table.column_names
    arrays = [table[c] for c in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*(a.tolist() for a in arrays)):
            writer.writerow(row)


def read_csv(path: str | Path, name: str = "") -> Table:
    """Read a CSV with a header row into a table.

    Column dtypes are inferred: integer if every value parses as int,
    else float if every value parses as float, else unicode string.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty") from None
        raw_columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise StorageError(
                    f"{path}: row has {len(row)} fields, expected {len(header)}"
                )
            for cell, bucket in zip(row, raw_columns):
                bucket.append(cell)

    columns: dict[str, np.ndarray] = {}
    for cname, raw in zip(header, raw_columns):
        columns[cname] = _infer_array(raw)
    return Table(columns, name=name or path.stem)


def _infer_array(values: list[str]) -> np.ndarray:
    """Convert string cells to the narrowest of int64 / float64 / str."""
    try:
        return np.asarray([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.asarray([float(v) for v in values], dtype=np.float64)
    except ValueError:
        pass
    return np.asarray(values, dtype=str)
