"""The in-memory columnar table.

A :class:`Table` is a named, immutable-by-convention mapping of column
names to equal-length one-dimensional numpy arrays.  All engines in this
repository (DBEst itself plus the exact/uniform/stratified baselines)
operate on tables; the workload generators produce them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import InvalidParameterError, SchemaMismatchError, UnknownColumnError
from repro.storage.schema import TableSchema


class Table:
    """A named collection of equal-length numpy columns.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array.  Arrays are converted with
        ``np.asarray`` and must all share the same length.
    name:
        Table name, used in error messages and by engine catalogs.
    schema:
        Optional explicit schema; inferred from dtypes when omitted.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray | Iterable],
        name: str = "",
        schema: TableSchema | None = None,
    ) -> None:
        converted: dict[str, np.ndarray] = {}
        length: int | None = None
        for cname, values in columns.items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise SchemaMismatchError(
                    f"column {cname!r} must be 1-D, got shape {array.shape}"
                )
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise SchemaMismatchError(
                    f"column {cname!r} has length {array.shape[0]}, "
                    f"expected {length}"
                )
            converted[cname] = array
        self._columns = converted
        self._n_rows = length or 0
        self.name = name
        if schema is not None:
            schema.validate(self._columns)
            self.schema = schema
        else:
            self.schema = TableSchema.infer(name, self._columns)

    # -- basic protocol ----------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __getitem__(self, column: str) -> np.ndarray:
        try:
            return self._columns[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, n_rows={self._n_rows}, "
            f"columns={self.column_names})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        return all(
            np.array_equal(self[c], other[c], equal_nan=True)
            for c in self.column_names
        )

    # -- derivation --------------------------------------------------------

    def select(self, columns: Iterable[str], name: str | None = None) -> "Table":
        """Return a new table with only the given columns (projection)."""
        cols = list(columns)
        missing = [c for c in cols if c not in self._columns]
        if missing:
            raise UnknownColumnError(self.name, missing[0])
        return Table(
            {c: self._columns[c] for c in cols},
            name=name if name is not None else self.name,
        )

    def filter(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table with the rows selected by a boolean ``mask``."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise InvalidParameterError(
                f"mask must be a boolean array of length {self._n_rows}"
            )
        return self.take(np.flatnonzero(mask), name=name)

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table with rows at ``indices`` (in order, repeats ok)."""
        indices = np.asarray(indices)
        return Table(
            {c: a[indices] for c, a in self._columns.items()},
            name=name if name is not None else self.name,
        )

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def with_column(self, column: str, values: np.ndarray) -> "Table":
        """Return a new table that adds (or replaces) one column."""
        merged = dict(self._columns)
        merged[column] = np.asarray(values)
        return Table(merged, name=self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a new table with columns renamed per ``mapping``."""
        return Table(
            {mapping.get(c, c): a for c, a in self._columns.items()},
            name=self.name,
        )

    def concat(self, other: "Table") -> "Table":
        """Stack another table with identical columns underneath this one."""
        if sorted(self.column_names) != sorted(other.column_names):
            raise SchemaMismatchError(
                f"cannot concat tables with columns {self.column_names} "
                f"and {other.column_names}"
            )
        return Table(
            {c: np.concatenate([self[c], other[c]]) for c in self.column_names},
            name=self.name,
        )

    # -- summaries ---------------------------------------------------------

    def column_range(self, column: str) -> tuple[float, float]:
        """(min, max) of a column; raises on empty tables."""
        values = self[column]
        if values.size == 0:
            raise InvalidParameterError(
                f"cannot take range of empty column {column!r}"
            )
        return float(values.min()), float(values.max())

    def distinct(self, column: str) -> np.ndarray:
        """Sorted distinct values of a column."""
        return np.unique(self[column])

    def to_rows(self) -> list[tuple]:
        """Materialise as a list of row tuples (small tables / tests only)."""
        arrays = [self._columns[c] for c in self.column_names]
        return list(zip(*(a.tolist() for a in arrays)))

    def nbytes(self) -> int:
        """Total memory held by the column arrays."""
        return int(sum(a.nbytes for a in self._columns.values()))
