"""In-memory columnar storage layer.

DBEst is storage-agnostic (paper §2.1); this package provides the minimal
columnar substrate the engine and the baseline AQP engines run on: a
:class:`Table` of named numpy columns, schema descriptions, predicate
evaluation, hash joins, and CSV import/export.
"""

from repro.storage.csvio import read_csv, write_csv
from repro.storage.join import hash_join
from repro.storage.predicates import (
    equality_mask,
    evaluate_predicates,
    range_mask,
)
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.table import Table

__all__ = [
    "ColumnSchema",
    "Table",
    "TableSchema",
    "equality_mask",
    "evaluate_predicates",
    "hash_join",
    "range_mask",
    "read_csv",
    "write_csv",
]
