"""Schema descriptions for columnar tables."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaMismatchError


@dataclass(frozen=True)
class ColumnSchema:
    """Describes one column: its name, numpy dtype kind, and role.

    ``kind`` follows numpy's dtype kinds: ``"f"`` float, ``"i"`` integer,
    ``"U"`` unicode string.  ``role`` is advisory metadata used by the
    workload generators and the engine ("measure", "dimension", "key").
    """

    name: str
    kind: str = "f"
    role: str = "measure"

    def matches(self, array: np.ndarray) -> bool:
        """Return True if ``array`` has a dtype compatible with this column."""
        if self.kind == "f":
            return array.dtype.kind in ("f", "i", "u")
        if self.kind == "i":
            return array.dtype.kind in ("i", "u")
        return array.dtype.kind == self.kind


@dataclass
class TableSchema:
    """Ordered collection of :class:`ColumnSchema` objects."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaMismatchError(f"schema {self.name!r} has no column {name!r}")

    def validate(self, columns: dict[str, np.ndarray]) -> None:
        """Raise :class:`SchemaMismatchError` unless ``columns`` fits this schema."""
        expected = self.column_names()
        got = list(columns)
        if sorted(expected) != sorted(got):
            raise SchemaMismatchError(
                f"schema {self.name!r} expects columns {expected}, got {got}"
            )
        for col in self.columns:
            if not col.matches(columns[col.name]):
                raise SchemaMismatchError(
                    f"column {col.name!r} expects kind {col.kind!r}, "
                    f"got dtype {columns[col.name].dtype}"
                )

    @classmethod
    def infer(cls, name: str, columns: dict[str, np.ndarray]) -> "TableSchema":
        """Build a schema by inspecting the dtypes of ``columns``."""
        cols = []
        for cname, array in columns.items():
            kind = array.dtype.kind
            if kind in ("u",):
                kind = "i"
            cols.append(ColumnSchema(name=cname, kind=kind))
        return cls(name=name, columns=cols)
