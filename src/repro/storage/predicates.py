"""Predicate evaluation over columnar tables.

These helpers turn the predicate forms DBEst supports (range predicates
``x BETWEEN lb AND ub`` and equality predicates ``z = v``) into boolean
masks over a :class:`~repro.storage.table.Table`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table


def range_mask(
    table: Table, column: str, low: float, high: float
) -> np.ndarray:
    """Boolean mask for ``low <= column <= high`` (BETWEEN is inclusive)."""
    if high < low:
        raise InvalidParameterError(
            f"range predicate on {column!r} has high < low ({high} < {low})"
        )
    values = table[column]
    return (values >= low) & (values <= high)


def equality_mask(table: Table, column: str, value: object) -> np.ndarray:
    """Boolean mask for ``column == value``."""
    return table[column] == value


def evaluate_predicates(
    table: Table,
    ranges: Iterable[tuple[str, float, float]] = (),
    equalities: Iterable[tuple[str, object]] = (),
) -> np.ndarray:
    """Conjunction of all given range and equality predicates.

    Returns an all-True mask when no predicates are supplied, matching SQL
    semantics of a missing WHERE clause.
    """
    mask = np.ones(table.n_rows, dtype=bool)
    for column, low, high in ranges:
        mask &= range_mask(table, column, low, high)
    for column, value in equalities:
        mask &= equality_mask(table, column, value)
    return mask
