"""Command-line interface.

Five subcommands cover the offline workflow the paper describes plus a
health check for the batched evaluation engine:

* ``generate``    — synthesise one of the evaluation datasets to CSV.
* ``build``       — sample a CSV table, train a (group-by) model, append
  it to a model catalog on disk.
* ``query``       — answer SQL from a saved catalog (no base data needed).
* ``advise``      — mine a query-log file and print which models to build.
* ``bench-smoke`` — a ~2 second batched-vs-scalar GROUP BY sanity check
  covering both sides of the batched engine: *training* (batched trainer
  vs the per-group loop, wall time + model-parameter parity) and
  *querying* (batched evaluator vs the scalar loop, wall time + answer
  parity), each run for 1-D predicates and for a MULTI leg with a
  two-column predicate exercising the product-kernel path; exits
  non-zero if any side disagrees.

Examples::

    python -m repro generate --dataset ccpp --rows 100000 --out ccpp.csv
    python -m repro build --csv ccpp.csv --x T --y EP --catalog models.pkl
    python -m repro query --catalog models.pkl \\
        "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;"
    python -m repro advise --log workload.sql
    python -m repro bench-smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.advisor import WorkloadAdvisor
from repro.core.catalog import ModelCatalog
from repro.core.config import DBEstConfig
from repro.core.engine import DBEst
from repro.errors import ReproError
from repro.storage.csvio import read_csv, write_csv
from repro.workloads import generate_beijing, generate_ccpp, generate_store_sales

_GENERATORS = {
    "tpcds": generate_store_sales,
    "ccpp": generate_ccpp,
    "beijing": generate_beijing,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBEst: model-based approximate query processing",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a dataset CSV")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate.add_argument("--rows", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True)

    build = commands.add_parser("build", help="train a model from a CSV table")
    build.add_argument("--csv", type=Path, required=True)
    build.add_argument("--table", help="table name (default: CSV stem)")
    build.add_argument("--x", required=True, help="predicate column(s), comma separated")
    build.add_argument("--y", help="aggregate column (omit for density-only)")
    build.add_argument("--group-by", dest="group_by")
    build.add_argument("--sample-size", type=int, default=10_000)
    build.add_argument(
        "--regressor", default="ensemble",
        choices=("ensemble", "gboost", "xgboost", "plr", "linear", "tree"),
    )
    build.add_argument("--seed", type=int, default=None)
    build.add_argument("--catalog", type=Path, required=True)

    query = commands.add_parser("query", help="answer SQL from a saved catalog")
    query.add_argument("--catalog", type=Path, required=True)
    query.add_argument("sql", help="the query text")

    advise = commands.add_parser("advise", help="recommend models for a query log")
    advise.add_argument("--log", type=Path, required=True,
                        help="file with one SQL query per line")
    advise.add_argument("--max-models", type=int, default=10)

    smoke = commands.add_parser(
        "bench-smoke",
        help="quick batched-vs-scalar GROUP BY sanity check",
    )
    smoke.add_argument("--groups", type=int, default=50)
    smoke.add_argument("--rows", type=int, default=60,
                       help="sample rows per group")
    smoke.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    table = _GENERATORS[args.dataset](args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {table.n_rows} rows of {args.dataset} to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    table = read_csv(args.csv, name=args.table or args.csv.stem)
    config = DBEstConfig(regressor=args.regressor, random_seed=args.seed)
    engine = DBEst(config=config)
    if args.catalog.exists():
        engine.catalog = ModelCatalog.load(args.catalog)
    engine.register_table(table)
    x = tuple(part.strip() for part in args.x.split(","))
    key = engine.build_model(
        table.name,
        x=x if len(x) > 1 else x[0],
        y=args.y,
        sample_size=args.sample_size,
        group_by=args.group_by,
    )
    written = engine.catalog.save(args.catalog)
    stats = engine.build_stats[key]
    print(
        f"built model {key.table}/{','.join(key.x_columns)}"
        f"{'->' + key.y_column if key.y_column else ''}"
        f"{' by ' + key.group_by if key.group_by else ''} "
        f"in {stats['training_seconds']:.2f}s; "
        f"catalog now {written / 1e6:.2f} MB at {args.catalog}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = DBEst()
    engine.catalog = ModelCatalog.load(args.catalog)
    result = engine.execute(args.sql)
    for aggregate, value in result.values.items():
        if isinstance(value, dict):
            print(aggregate)
            for group, group_value in sorted(value.items()):
                print(f"  {group}\t{group_value:.6g}")
        else:
            print(f"{aggregate}\t{value:.6g}")
    print(f"({result.elapsed_seconds * 1000:.1f} ms, source={result.source})",
          file=sys.stderr)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    advisor = WorkloadAdvisor()
    for line in args.log.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            advisor.observe(line)
    recommendations = advisor.recommend(max_models=args.max_models)
    if not recommendations:
        print("no buildable model templates found in the log")
        return 1
    print(f"{'coverage':>9}  {'queries':>7}  template")
    for rec in recommendations:
        print(
            f"{rec.coverage * 100:>8.1f}%  {rec.frequency:>7}  "
            f"{rec.template.describe()}"
        )
    return 0


def _smoke_leg(
    prefix: str,
    train_kwargs: dict,
    ranges: dict,
    param_arrays,
) -> tuple[float, float]:
    """Run one batched-vs-scalar leg (training + querying) of bench-smoke.

    Prints one TRAIN row and one row per aggregate; returns the worst
    trained-parameter and answer divergences.  ``param_arrays`` maps a
    (batched_model, scalar_model) pair to the (got, expected) array pairs
    compared for training parity.
    """
    import time

    import numpy as np

    from repro.core.groupby import GroupByModelSet
    from repro.sql.ast import AggregateCall

    train_timings = {}
    trained = {}
    for batched in (False, True):
        GroupByModelSet.train(batched=batched, **train_kwargs)  # warm-up
        start = time.perf_counter()
        trained[batched] = GroupByModelSet.train(
            batched=batched, **train_kwargs
        )
        train_timings[batched] = time.perf_counter() - start
    train_worst = 0.0
    for value, scalar_model in trained[False].models.items():
        batched_model = trained[True].models[value]
        for got, expected in param_arrays(batched_model, scalar_model):
            if got.shape != expected.shape:
                train_worst = float("inf")
                continue
            scale = np.maximum(1.0, np.abs(expected))
            train_worst = max(
                train_worst,
                float(np.max(np.abs(got - expected) / scale, initial=0.0)),
            )

    model_set = trained[True]
    if model_set.batched_evaluator() is None:
        raise ReproError(
            f"{prefix}smoke model set did not stack into the batched evaluator"
        )
    worst = 0.0
    print(f"{prefix + 'TRAIN':<12} {train_timings[False] * 1e3:>8.2f}ms "
          f"{train_timings[True] * 1e3:>8.2f}ms "
          f"{train_timings[False] / train_timings[True]:>7.1f}x")
    for func in ("COUNT", "SUM", "AVG"):
        aggregate = AggregateCall(func, "y")
        timings = {}
        for batched in (False, True):
            model_set.answer(aggregate, ranges, batched=batched)  # warm-up
            start = time.perf_counter()
            model_set.answer(aggregate, ranges, batched=batched)
            timings[batched] = time.perf_counter() - start
        batched_answers = model_set.answer(aggregate, ranges, batched=True)
        scalar_answers = model_set.answer(aggregate, ranges, batched=False)
        for value, expected in scalar_answers.items():
            got = batched_answers[value]
            if np.isnan(expected) or np.isnan(got):
                if np.isnan(expected) != np.isnan(got):
                    worst = float("inf")  # one-sided NaN is a divergence
                continue
            worst = max(worst, abs(got - expected) / max(1.0, abs(expected)))
        print(f"{prefix + func:<12} {timings[False] * 1e3:>8.2f}ms "
              f"{timings[True] * 1e3:>8.2f}ms "
              f"{timings[False] / timings[True]:>7.1f}x")
    return train_worst, worst


def _cmd_bench_smoke(args: argparse.Namespace) -> int:
    """Batched-vs-scalar GROUP BY check on small synthetic model sets."""
    import numpy as np

    if args.groups < 1 or args.rows < 1:
        print("error: bench-smoke needs --groups >= 1 and --rows >= 1",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    n = args.groups * args.rows
    groups = np.repeat(np.arange(args.groups), args.rows)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + groups * 0.1) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr", min_group_rows=min(30, args.rows),
        integration_points=65, random_seed=args.seed,
    )
    print(f"{'leg':<12} {'scalar':>10} {'batched':>10} {'speedup':>8}")
    train_worst, worst = _smoke_leg(
        "",
        dict(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="smoke", x_columns=("x",), y_column="y",
            group_column="g", config=config,
        ),
        {"x": (20.0, 60.0)},
        lambda batched, scalar: (
            (batched.density._centres, scalar.density._centres),
            (batched.density._weights, scalar.density._weights),
            (batched.regressor._coef, scalar.regressor._coef),
            (batched.regressor._knots, scalar.regressor._knots),
        ),
    )

    # MULTI leg: a two-column predicate through the product-kernel path.
    x2 = np.column_stack([x, rng.uniform(-5.0, 5.0, size=n)])
    y2 = (1.0 + groups * 0.1) * x2[:, 0] + 2.0 * x2[:, 1] \
        + rng.normal(0.0, 1.0, size=n)
    multi_config = DBEstConfig(
        regressor="linear", min_group_rows=min(30, args.rows),
        integration_points=65, random_seed=args.seed,
    )
    multi_train_worst, multi_worst = _smoke_leg(
        "MULTI-",
        dict(
            sample_x=x2, sample_y=y2, sample_groups=groups,
            full_groups=groups, full_x=x2, full_y=y2,
            table_name="smoke2", x_columns=("a", "b"), y_column="y",
            group_column="g", config=multi_config,
        ),
        {"a": (20.0, 60.0), "b": (-3.0, 3.0)},
        lambda batched, scalar: (
            (batched.density._centres, scalar.density._centres),
            (batched.density._weights, scalar.density._weights),
            (batched.density._h, scalar.density._h),
            (batched.regressor._coef, scalar.regressor._coef),
        ),
    )
    train_worst = max(train_worst, multi_train_worst)
    worst = max(worst, multi_worst)
    print(f"max answer divergence over {args.groups} groups: {worst:.2e}; "
          f"max trained-parameter divergence: {train_worst:.2e}")
    if worst > 1e-9 or train_worst > 1e-9:
        print("error: batched and scalar paths disagree beyond 1e-9",
              file=sys.stderr)
        return 2
    print("ok: batched training and evaluation match the scalar oracles "
          "(1-D and multivariate)")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "query": _cmd_query,
    "advise": _cmd_advise,
    "bench-smoke": _cmd_bench_smoke,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
