"""Command-line interface.

The subcommands cover the offline workflow the paper describes, the
serving loop, streaming ingest, and health checks for the batched
engine:

* ``generate``    — synthesise one of the evaluation datasets to CSV.
* ``build``       — sample a CSV table, train a (group-by) model, append
  it to a model catalog on disk.
* ``query``       — answer SQL from a saved catalog (no base data needed).
* ``pack-store``  — repack a catalog file as a lazy per-model store
  directory (:class:`repro.serve.ModelStore`).
* ``store-info``  — dump a store's per-record layout;
  ``--generations`` also lists the live/dead record-generation
  inventory.
* ``refresh-store`` — absorb a CSV delta into a store's streaming
  models: per-group reservoirs absorb the rows, only the dirty groups
  re-fit, and each refreshed model is republished as a new record
  generation (``--prune`` reclaims superseded generations no reader
  still maps).
* ``serve``       — answer a stream of SQL (file or stdin) through the
  coalescing :class:`repro.serve.QueryServer`, from a catalog or store;
  ``--deadline-ms``/``--max-queue``/``--shed-policy``/``--degrade``
  expose the fault-tolerance knobs.
* ``advise``      — mine a query-log file and print which models to build.
* ``bench-smoke`` — a ~2 second batched-vs-scalar GROUP BY sanity check
  covering both sides of the batched engine: *training* (batched trainer
  vs the per-group loop, wall time + model-parameter parity) and
  *querying* (batched evaluator vs the scalar loop, wall time + answer
  parity), each run for 1-D predicates, for a MULTI leg with a
  two-column predicate exercising the product-kernel path, and for a
  FOREST leg training a boosted-tree set through the level-synchronous
  forest kernel (node arrays must match the per-group fits bit for
  bit), plus a SERVE
  leg checking that coalesced/cached serving answers match sequential
  ``execute`` and a FAULT leg serving the same workload from a model
  store under injected faults (10% load latency, 1% corruption) where
  every query must still be answered, and an INGEST leg appending ~5%
  new rows to a streaming model set and checking the dirty-group
  refresh against a full retrain on the same final sample; exits
  non-zero if any side disagrees or availability drops below 100%.
* ``bench-serve`` — in-process serving throughput check: a mixed
  workload over a group-by model set, naive sequential ``execute`` vs
  the query server, with answer parity enforced.

Examples::

    python -m repro generate --dataset ccpp --rows 100000 --out ccpp.csv
    python -m repro build --csv ccpp.csv --x T --y EP --catalog models.pkl
    python -m repro query --catalog models.pkl \\
        "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20;"
    python -m repro pack-store --catalog models.pkl --store models.store
    python -m repro refresh-store --store models.store --csv delta.csv --prune
    python -m repro serve --store models.store --queries workload.sql
    python -m repro advise --log workload.sql
    python -m repro bench-smoke
    python -m repro bench-serve
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.advisor import WorkloadAdvisor
from repro.core.catalog import ModelCatalog
from repro.core.config import DBEstConfig
from repro.core.engine import DBEst
from repro.errors import ReproError
from repro.storage.csvio import read_csv, write_csv
from repro.workloads import generate_beijing, generate_ccpp, generate_store_sales

_GENERATORS = {
    "tpcds": generate_store_sales,
    "ccpp": generate_ccpp,
    "beijing": generate_beijing,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBEst: model-based approximate query processing",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a dataset CSV")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate.add_argument("--rows", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True)

    build = commands.add_parser("build", help="train a model from a CSV table")
    build.add_argument("--csv", type=Path, required=True)
    build.add_argument("--table", help="table name (default: CSV stem)")
    build.add_argument("--x", required=True, help="predicate column(s), comma separated")
    build.add_argument("--y", help="aggregate column (omit for density-only)")
    build.add_argument("--group-by", dest="group_by")
    build.add_argument("--sample-size", type=int, default=10_000)
    build.add_argument(
        "--regressor", default="ensemble",
        choices=("ensemble", "gboost", "xgboost", "plr", "linear", "tree"),
    )
    build.add_argument("--seed", type=int, default=None)
    build.add_argument(
        "--streaming", action="store_true",
        help="keep per-group reservoir state so the model can absorb "
             "appended rows later (group-by models only; see "
             "refresh-store)",
    )
    build.add_argument("--catalog", type=Path, required=True)

    query = commands.add_parser("query", help="answer SQL from a saved catalog")
    query.add_argument("--catalog", type=Path, required=True)
    query.add_argument("sql", help="the query text")

    pack = commands.add_parser(
        "pack-store",
        help="repack a catalog file as a lazy per-model store directory",
    )
    pack.add_argument("--catalog", type=Path, required=True)
    pack.add_argument("--store", type=Path, required=True)
    pack.add_argument(
        "--format", dest="store_format", choices=("pickle", "mmap"),
        default="pickle",
        help="record format: pickle (default) or mmap (zero-copy "
             "memory-mappable records for group-by sets)",
    )

    store_info = commands.add_parser(
        "store-info",
        help="dump a model store's per-record layout and byte accounting",
    )
    store_info.add_argument("--store", type=Path, required=True)
    store_info.add_argument(
        "--segments", action="store_true",
        help="also list every mapped record's segment table",
    )
    store_info.add_argument(
        "--generations", action="store_true",
        help="also list the live/dead record-generation inventory "
             "(dead files are reclaimable via refresh-store --prune)",
    )

    refresh_store = commands.add_parser(
        "refresh-store",
        help="absorb a CSV delta into a store's streaming models "
             "(dirty-group refresh, published as new record generations)",
    )
    refresh_store.add_argument("--store", type=Path, required=True)
    refresh_store.add_argument("--csv", type=Path, required=True,
                               help="delta rows to append (same schema "
                                    "as the base table)")
    refresh_store.add_argument("--table",
                               help="table the delta belongs to "
                                    "(default: CSV stem)")
    refresh_store.add_argument(
        "--prune", action="store_true",
        help="after republishing, unlink superseded record generations "
             "that no reader still maps",
    )

    serve = commands.add_parser(
        "serve",
        help="answer a stream of SQL through the coalescing query server",
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--catalog", type=Path, help="pickled catalog file")
    source.add_argument("--store", type=Path, help="lazy model store directory")
    serve.add_argument("--queries", type=Path,
                       help="file with one SQL query per line (default: stdin)")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--cache-bytes", type=int, default=None,
                       help="store residency budget in bytes (0 = unbounded)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-query deadline in milliseconds "
                            "(0 disables; default: engine config)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound on queued queries before shedding "
                            "(0 = unbounded; default: engine config)")
    serve.add_argument("--shed-policy", choices=("reject", "drop-oldest"),
                       default=None,
                       help="who pays when the queue is full "
                            "(default: engine config)")
    serve.add_argument("--degrade", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="serve degraded AQP/exact answers when the "
                            "model path is unavailable "
                            "(default: engine config)")
    serve.add_argument("--metrics-every", type=int, default=None, metavar="N",
                       help="enable metrics + tracing and print a JSON "
                            "metrics snapshot to stderr every N answered "
                            "queries, plus a final Prometheus exposition")

    stats_cmd = commands.add_parser(
        "stats",
        help="print the metrics registry (Prometheus text format or JSON)",
    )
    stats_source = stats_cmd.add_mutually_exclusive_group(required=True)
    stats_source.add_argument("--catalog", type=Path,
                              help="pickled catalog file")
    stats_source.add_argument("--store", type=Path,
                              help="lazy model store directory")
    stats_cmd.add_argument("--queries", type=Path, default=None,
                           help="optional SQL workload (one query per line) "
                                "replayed through the query server before "
                                "reporting")
    stats_cmd.add_argument("--workers", type=int, default=4)
    stats_cmd.add_argument("--json", action="store_true",
                           help="emit the JSON snapshot instead of the "
                                "Prometheus text exposition")
    stats_cmd.add_argument("--traces", type=int, default=0, metavar="N",
                           help="also print the N slowest query traces "
                                "to stderr")

    advise = commands.add_parser("advise", help="recommend models for a query log")
    advise.add_argument("--log", type=Path, required=True,
                        help="file with one SQL query per line")
    advise.add_argument("--max-models", type=int, default=10)

    smoke = commands.add_parser(
        "bench-smoke",
        help="quick batched-vs-scalar GROUP BY sanity check",
    )
    smoke.add_argument("--groups", type=int, default=50)
    smoke.add_argument("--rows", type=int, default=60,
                       help="sample rows per group")
    smoke.add_argument("--seed", type=int, default=7)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="serving throughput vs naive sequential execute",
    )
    bench_serve.add_argument("--groups", type=int, default=100)
    bench_serve.add_argument("--rows", type=int, default=40,
                             help="sample rows per group")
    bench_serve.add_argument("--queries", type=int, default=200)
    bench_serve.add_argument("--workers", type=int, default=4)
    bench_serve.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    table = _GENERATORS[args.dataset](args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {table.n_rows} rows of {args.dataset} to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    table = read_csv(args.csv, name=args.table or args.csv.stem)
    config = DBEstConfig(regressor=args.regressor, random_seed=args.seed)
    engine = DBEst(config=config)
    if args.catalog.exists():
        engine.catalog = ModelCatalog.load(args.catalog)
    engine.register_table(table)
    x = tuple(part.strip() for part in args.x.split(","))
    key = engine.build_model(
        table.name,
        x=x if len(x) > 1 else x[0],
        y=args.y,
        sample_size=args.sample_size,
        group_by=args.group_by,
        streaming=args.streaming,
    )
    written = engine.catalog.save(args.catalog)
    stats = engine.build_stats[key]
    print(
        f"built model {key.table}/{','.join(key.x_columns)}"
        f"{'->' + key.y_column if key.y_column else ''}"
        f"{' by ' + key.group_by if key.group_by else ''} "
        f"in {stats['training_seconds']:.2f}s; "
        f"catalog now {written / 1e6:.2f} MB at {args.catalog}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = DBEst()
    engine.catalog = ModelCatalog.load(args.catalog)
    result = engine.execute(args.sql)
    _print_result(result)
    print(f"({result.elapsed_seconds * 1000:.1f} ms, source={result.source})",
          file=sys.stderr)
    return 0


def _cmd_pack_store(args: argparse.Namespace) -> int:
    from repro.serve import ModelStore

    catalog = ModelCatalog.load(args.catalog)
    store = ModelStore.write(catalog, args.store, store_format=args.store_format)
    mapped = sum(1 for row in store.summary() if row["format"] == "mmap")
    detail = f", {mapped} mapped" if args.store_format == "mmap" else ""
    print(
        f"packed {len(store)} model(s) "
        f"({store.total_size_bytes() / 1e6:.2f} MB of records{detail}) "
        f"into {args.store}"
    )
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    from repro.serve import ModelStore

    store = ModelStore(args.store)
    print(f"{args.store}: {len(store)} record(s), "
          f"{store.total_size_bytes() / 1e6:.2f} MB on disk")
    print(f"{'model':<40} {'format':<8} {'record':>10} {'heap':>10} "
          f"{'mapped':>10}")
    for key in store.keys():
        layout = store.record_layout(key)
        name = f"{key.table}/{','.join(key.x_columns)}"
        if key.y_column:
            name += f"->{key.y_column}"
        if key.group_by:
            name += f" by {key.group_by}"
        print(f"{name:<40} {layout['format']:<8} "
              f"{layout['record_bytes']:>10} {layout['heap_bytes']:>10} "
              f"{layout['mapped_bytes']:>10}")
        if args.segments and "segments" in layout:
            for seg in layout["segments"]:
                shape = "x".join(str(dim) for dim in seg["shape"]) or "scalar"
                print(f"    {seg['name']:<36} {seg['dtype']:<8} "
                      f"{shape:>12} @{seg['offset']:>9} "
                      f"{seg['nbytes']:>10} B")
    if args.generations:
        inventory = store.generations()
        print(f"generations: {len(inventory['live'])} live, "
              f"{len(inventory['dead'])} dead")
        for row in inventory["live"]:
            name = f"{row['table']}/{','.join(row['x_columns'])}"
            if row["y_column"]:
                name += f"->{row['y_column']}"
            if row["group_by"]:
                name += f" by {row['group_by']}"
            print(f"  live {row['filename']:<24} {name}")
        for row in inventory["dead"]:
            state = "pinned by a reader" if row["pinned"] else "reclaimable"
            print(f"  dead {row['filename']:<24} ({state})")
    return 0


def _cmd_refresh_store(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serve import ModelStore

    store = ModelStore(args.store)
    delta = read_csv(args.csv, name=args.table or args.csv.stem)
    refreshed = 0
    skipped = []
    for key in list(store.keys()):
        if key.table != delta.name:
            continue
        model = store.get(key)
        hydrate = getattr(model, "_hydrated", None)
        if hydrate is not None:  # mapped store wrapper -> heap set
            model = hydrate()
        if not getattr(model, "is_streaming", False):
            skipped.append(key)
            continue
        delta_x = np.column_stack(
            [delta[c].astype(np.float64) for c in key.x_columns]
        )
        delta_y = (
            None
            if key.y_column is None
            else delta[key.y_column].astype(np.float64)
        )
        dirty = model.refresh(delta_x, delta_y, delta[key.group_by])
        record = store.write_refresh(key, model)
        name = f"{key.table}/{','.join(key.x_columns)}"
        if key.y_column:
            name += f"->{key.y_column}"
        if key.group_by:
            name += f" by {key.group_by}"
        print(f"refreshed {name}: {len(dirty)} dirty group(s) "
              f"-> {record.filename}")
        refreshed += 1
    if args.prune:
        removed = store.prune()
        print(f"pruned {len(removed)} superseded record file(s)")
    print(f"{delta.n_rows} delta row(s) into {delta.name}: "
          f"{refreshed} model(s) refreshed, {len(skipped)} left stale "
          f"(not trained with streaming=True)")
    return 0


def _print_result(result) -> None:
    for aggregate, value in result.values.items():
        if isinstance(value, dict):
            print(aggregate)
            for group, group_value in sorted(value.items()):
                print(f"  {group}\t{group_value:.6g}")
        else:
            print(f"{aggregate}\t{value:.6g}")


def _json_safe(node):
    """Replace NaN/Inf floats with None so the dump is strict JSON."""
    import math

    if isinstance(node, float) and not math.isfinite(node):
        return None
    if isinstance(node, dict):
        return {key: _json_safe(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_json_safe(value) for value in node]
    return node


def _cmd_stats(args: argparse.Namespace) -> int:
    """One metrics exposition for a catalog/store, after an optional
    workload replay through the query server."""
    import json

    from repro.obs import enable_metrics, render_prometheus
    from repro.obs.trace import enable_tracing
    from repro.serve import ModelStore, QueryServer

    registry = enable_metrics()
    traces = enable_tracing() if args.traces > 0 else None
    engine = DBEst()
    if args.store is not None:
        engine.catalog = ModelStore(args.store)
    else:
        engine.catalog = ModelCatalog.load(args.catalog)
    if args.queries is not None:
        sqls = [
            line.strip()
            for line in args.queries.read_text().splitlines()
            if line.strip() and not line.strip().startswith(("--", "#"))
        ]
        with QueryServer(engine, n_workers=args.workers) as server:
            submitted = []
            for sql in sqls:
                try:
                    submitted.append(server.submit(sql))
                except ReproError as exc:
                    print(f"error: {sql}: {exc}", file=sys.stderr)
            for future in submitted:
                try:
                    future.result()
                except Exception as exc:
                    print(f"error: {exc}", file=sys.stderr)
            # Snapshot while the server is alive so its pull collector
            # still contributes (it is weakly referenced).
            if args.json:
                print(json.dumps(
                    _json_safe(registry.snapshot()), indent=2, sort_keys=True
                ))
            else:
                sys.stdout.write(render_prometheus(registry))
    else:
        if args.json:
            print(json.dumps(
                _json_safe(registry.snapshot()), indent=2, sort_keys=True
            ))
        else:
            sys.stdout.write(render_prometheus(registry))
    if traces is not None:
        for trace in traces.slowest(args.traces):
            print(trace.render(), file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ModelStore, QueryServer

    engine = DBEst()
    if args.store is not None:
        engine.catalog = ModelStore(args.store, cache_bytes=args.cache_bytes)
    else:
        if args.cache_bytes is not None:
            print("error: --cache-bytes only applies to --store (a pickled "
                  "catalog is loaded whole, with no residency budget)",
                  file=sys.stderr)
            return 2
        engine.catalog = ModelCatalog.load(args.catalog)
    if args.queries is not None:
        lines = args.queries.read_text().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    sqls = [
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith(("--", "#"))
    ]
    if not sqls:
        print("error: no queries to serve", file=sys.stderr)
        return 2
    import time

    registry = None
    if args.metrics_every is not None:
        if args.metrics_every < 1:
            print("error: --metrics-every must be >= 1", file=sys.stderr)
            return 2
        import json

        from repro.obs import enable_metrics, render_prometheus
        from repro.obs.trace import enable_tracing

        registry = enable_metrics()
        enable_tracing()

    start = time.perf_counter()
    with QueryServer(
        engine,
        n_workers=args.workers,
        deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        degrade=args.degrade,
    ) as server:
        # One bad line must not abort the stream: parse errors raise at
        # submit time (as does admission shedding under --max-queue) and
        # are reported in place of that query's answer.
        submitted = []
        for sql in sqls:
            try:
                submitted.append((sql, server.submit(sql), None))
            except ReproError as exc:
                submitted.append((sql, None, exc))
        answered = 0
        for sql, future, error in submitted:
            print(f"-- {sql}")
            if error is None:
                try:
                    _print_result(future.result())
                except Exception as exc:
                    error = exc
            if error is not None:
                print(f"error: {error}")
            answered += 1
            if registry is not None and answered % args.metrics_every == 0:
                print(
                    json.dumps(_json_safe(registry.snapshot())),
                    file=sys.stderr,
                )
        stats = server.stats()
        if registry is not None:
            # Final exposition while the server's pull collector is
            # still alive (it is weakly referenced).
            sys.stderr.write(render_prometheus(registry))
    elapsed = time.perf_counter() - start
    qps = len(sqls) / elapsed if elapsed > 0 else float("inf")
    print(
        f"served {stats['queries']} queries in {elapsed * 1e3:.1f} ms "
        f"({qps:.0f} q/s): {stats['batches']} engine batches, "
        f"{stats['coalesced']} coalesced, {stats['engine_calls']} engine "
        f"calls, {stats['answer_cache']['hits']} answer-cache hits, "
        f"{stats['plan_cache']['hits']} plan-cache hits",
        file=sys.stderr,
    )
    print(
        f"faults: {stats['shed']} shed, {stats['deadline_missed']} "
        f"deadline-missed, {stats['degraded']} degraded, "
        f"{stats.get('retried', 0)} store retries, "
        f"{stats['breaker']['opens']} breaker opens "
        f"({stats['breaker']['open']} open now)",
        file=sys.stderr,
    )
    if "store" in stats:
        store_stats = stats["store"]
        print(
            f"store: {store_stats['resident']}/{store_stats['models']} "
            f"models resident ({store_stats['resident_bytes'] / 1e6:.2f} MB, "
            f"budget {store_stats['budget_bytes'] / 1e6:.2f} MB), "
            f"{store_stats['loads']} loads, "
            f"{store_stats['evictions']} evictions",
            file=sys.stderr,
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    advisor = WorkloadAdvisor()
    for line in args.log.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            advisor.observe(line)
    recommendations = advisor.recommend(max_models=args.max_models)
    if not recommendations:
        print("no buildable model templates found in the log")
        return 1
    print(f"{'coverage':>9}  {'queries':>7}  template")
    for rec in recommendations:
        print(
            f"{rec.coverage * 100:>8.1f}%  {rec.frequency:>7}  "
            f"{rec.template.describe()}"
        )
    return 0


def _smoke_leg(
    prefix: str,
    train_kwargs: dict,
    ranges: dict,
    param_arrays,
) -> tuple[float, float]:
    """Run one batched-vs-scalar leg (training + querying) of bench-smoke.

    Prints one TRAIN row and one row per aggregate; returns the worst
    trained-parameter and answer divergences.  ``param_arrays`` maps a
    (batched_model, scalar_model) pair to the (got, expected) array pairs
    compared for training parity.
    """
    import time

    import numpy as np

    from repro.core.groupby import GroupByModelSet
    from repro.sql.ast import AggregateCall

    train_timings = {}
    trained = {}
    for batched in (False, True):
        GroupByModelSet.train(batched=batched, **train_kwargs)  # warm-up
        start = time.perf_counter()
        trained[batched] = GroupByModelSet.train(
            batched=batched, **train_kwargs
        )
        train_timings[batched] = time.perf_counter() - start
    train_worst = 0.0
    for value, scalar_model in trained[False].models.items():
        batched_model = trained[True].models[value]
        for got, expected in param_arrays(batched_model, scalar_model):
            if got.shape != expected.shape:
                train_worst = float("inf")
                continue
            scale = np.maximum(1.0, np.abs(expected))
            train_worst = max(
                train_worst,
                float(np.max(np.abs(got - expected) / scale, initial=0.0)),
            )

    model_set = trained[True]
    if model_set.batched_evaluator() is None:
        raise ReproError(
            f"{prefix}smoke model set did not stack into the batched evaluator"
        )
    worst = 0.0
    print(f"{prefix + 'TRAIN':<12} {train_timings[False] * 1e3:>8.2f}ms "
          f"{train_timings[True] * 1e3:>8.2f}ms "
          f"{train_timings[False] / train_timings[True]:>7.1f}x")
    for func in ("COUNT", "SUM", "AVG"):
        aggregate = AggregateCall(func, "y")
        timings = {}
        for batched in (False, True):
            model_set.answer(aggregate, ranges, batched=batched)  # warm-up
            start = time.perf_counter()
            model_set.answer(aggregate, ranges, batched=batched)
            timings[batched] = time.perf_counter() - start
        batched_answers = model_set.answer(aggregate, ranges, batched=True)
        scalar_answers = model_set.answer(aggregate, ranges, batched=False)
        for value, expected in scalar_answers.items():
            got = batched_answers[value]
            if np.isnan(expected) or np.isnan(got):
                if np.isnan(expected) != np.isnan(got):
                    worst = float("inf")  # one-sided NaN is a divergence
                continue
            worst = max(worst, abs(got - expected) / max(1.0, abs(expected)))
        print(f"{prefix + func:<12} {timings[False] * 1e3:>8.2f}ms "
              f"{timings[True] * 1e3:>8.2f}ms "
              f"{timings[False] / timings[True]:>7.1f}x")
    return train_worst, worst


def _serving_fixture(
    groups: int, rows: int, seed: int, sample_size: int | None = None
):
    """A DBEst engine with one group-by and one scalar model, plus a
    mixed serving workload (shared by bench-serve, the SERVE smoke leg,
    and ``benchmarks/bench_serving.py``)."""
    import numpy as np

    from repro.storage.table import Table

    rng = np.random.default_rng(seed)
    n = groups * rows
    g = np.repeat(np.arange(groups), rows).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + g * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr", min_group_rows=min(30, rows),
        integration_points=65, random_seed=seed,
    )
    engine = DBEst(config=config)
    engine.register_table(Table({"x": x, "y": y, "g": g}, name="served"))
    size = sample_size or n
    engine.build_model("served", x="x", y="y", sample_size=size, group_by="g")
    engine.build_model("served", x="x", y="y", sample_size=size)
    bounds = [(20.0, 60.0), (10.0, 45.0), (55.0, 90.0), (30.0, 75.0)]
    distinct = []
    for lo, hi in bounds:
        for func, column in (("COUNT", "x"), ("SUM", "y"), ("AVG", "y")):
            distinct.append(
                f"SELECT {func}({column}) FROM served "
                f"WHERE x BETWEEN {lo} AND {hi} GROUP BY g;"
            )
        distinct.append(
            f"SELECT AVG(y) FROM served WHERE x BETWEEN {lo} AND {hi};"
        )
    return engine, distinct


def _serving_divergence(sequential, served) -> float:
    """Worst relative divergence between two lists of QueryResults."""
    import math

    worst = 0.0
    for seq_result, served_result in zip(sequential, served):
        for label, expected in seq_result.values.items():
            got = served_result.values[label]
            if isinstance(expected, dict):
                pairs = [(expected[value], got[value]) for value in expected]
            else:
                pairs = [(expected, got)]
            for want, have in pairs:
                if math.isnan(want) or math.isnan(have):
                    if math.isnan(want) != math.isnan(have):
                        worst = float("inf")
                    continue
                worst = max(worst, abs(have - want) / max(1.0, abs(want)))
    return worst


def _smoke_serve_leg(args: argparse.Namespace) -> float:
    """Coalesced/cached serving vs sequential execute; returns worst
    divergence and prints one SERVE timing row."""
    import time

    from repro.serve import QueryServer

    engine, distinct = _serving_fixture(
        min(args.groups, 20), args.rows, args.seed
    )
    workload = distinct * 3
    engine.execute(workload[0])  # warm-up (evaluator stacking)
    start = time.perf_counter()
    sequential = [engine.execute(sql) for sql in workload]
    sequential_s = time.perf_counter() - start
    with QueryServer(engine, n_workers=2) as server:
        start = time.perf_counter()
        served = server.run(workload)
        served_s = time.perf_counter() - start
    print(f"{'SERVE':<12} {sequential_s * 1e3:>8.2f}ms {served_s * 1e3:>8.2f}ms "
          f"{sequential_s / served_s:>7.1f}x")
    return _serving_divergence(sequential, served)


def _smoke_fault_leg(args: argparse.Namespace) -> tuple[int, int, float]:
    """Serve the smoke workload from a store under injected faults.

    10% of record loads suffer a latency spike and 1% return corrupted
    bytes (seeded, so the schedule is reproducible).  Every query must
    still resolve — answered exactly from intact models, or flagged
    ``degraded`` when a record was quarantined.  Returns
    ``(unanswered, degraded, worst_divergence_of_exact_answers)`` and
    prints one FAULT timing row.
    """
    import tempfile
    import time

    from repro.serve import STORE_LOAD, FaultInjector, ModelStore, QueryServer

    engine, distinct = _serving_fixture(
        min(args.groups, 20), args.rows, args.seed
    )
    workload = distinct * 3
    engine.execute(workload[0])  # warm-up (evaluator stacking)
    sequential = [engine.execute(sql) for sql in workload]
    faults = FaultInjector(seed=args.seed)
    faults.inject(STORE_LOAD, probability=0.10, latency_s=0.002)
    faults.inject(STORE_LOAD, probability=0.01, corrupt=True)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "models.store"
        ModelStore.write(engine.catalog, store_path)
        # cache_bytes=1 evicts every record after use, so each answer
        # re-crosses the faulty store.load seam instead of hiding in
        # the residency cache.
        engine.catalog = ModelStore(store_path, cache_bytes=1, faults=faults)
        start = time.perf_counter()
        with QueryServer(engine, n_workers=2, answer_cache_size=1) as server:
            futures = [server.submit(sql) for sql in workload]
            served = []
            for future in futures:
                try:
                    served.append(future.result(timeout=30.0))
                except Exception:
                    served.append(None)
        served_s = time.perf_counter() - start
    unanswered = sum(1 for result in served if result is None)
    degraded = sum(
        1 for result in served if result is not None and result.degraded
    )
    exact_pairs = [
        (seq, got)
        for seq, got in zip(sequential, served)
        if got is not None and not got.degraded
    ]
    worst = _serving_divergence(
        [pair[0] for pair in exact_pairs], [pair[1] for pair in exact_pairs]
    )
    print(f"{'FAULT':<12} {'':>10} {served_s * 1e3:>8.2f}ms "
          f"{len(workload) - unanswered}/{len(workload)} answered, "
          f"{degraded} degraded, {faults.fired(STORE_LOAD)} faults fired")
    return unanswered, degraded, worst


def _smoke_mmap_leg(args: argparse.Namespace) -> float:
    """Serve the workload from a zero-copy mapped store; answers must
    be bit-identical to the in-memory catalog (returns the worst
    divergence) and worker-pool segments must pickle by reference."""
    import pickle
    import tempfile
    import time
    from pathlib import Path

    from repro.serve import MappedGroupByModelSet, ModelStore

    engine, distinct = _serving_fixture(
        min(args.groups, 20), args.rows, args.seed
    )
    engine.execute(distinct[0])  # warm-up (evaluator stacking)
    sequential = [engine.execute(sql) for sql in distinct]
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "models.store"
        ModelStore.write(engine.catalog, store_path, store_format="mmap")
        engine.catalog = ModelStore(store_path)
        start = time.perf_counter()
        served = [engine.execute(sql) for sql in distinct]
        served_s = time.perf_counter() - start
        mapped = [
            engine.catalog.get(key)
            for key in engine.catalog.keys()
            if key.group_by
        ]
        assert all(
            isinstance(model, MappedGroupByModelSet) for model in mapped
        ), "group-by records did not load through the mapped path"
        segment_bytes = max(
            len(pickle.dumps(segment))
            for model in mapped
            for segment in model.batched_evaluator().split(4)
        )
        stats = engine.catalog.stats()
    worst = _serving_divergence(sequential, served)
    print(f"{'MMAP':<12} {'':>10} {served_s * 1e3:>8.2f}ms "
          f"{stats['mapped_bytes']} B mapped, "
          f"{stats['heap_bytes']} B heap, "
          f"{segment_bytes} B worst segment pickle")
    if segment_bytes > 4096:
        raise AssertionError(
            f"mapped evaluator segments pickle at {segment_bytes} bytes — "
            "they are shipping arrays, not path references"
        )
    return worst


def _smoke_ingest_leg(args: argparse.Namespace) -> float:
    """Streaming ingest: append ~5% new rows, refresh only the dirty
    groups, and check answers against a from-scratch retrain on the same
    final sample (returns the worst divergence); prints one INGEST row
    timing the full retrain against the dirty-group refresh."""
    import time

    import numpy as np

    from repro.core.groupby import GroupByModelSet
    from repro.sql.ast import AggregateCall

    groups = max(10, min(args.groups, 40))
    rows = args.rows
    rng = np.random.default_rng(args.seed)
    n = groups * rows
    g = np.repeat(np.arange(groups), rows).astype(np.float64)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + g * 0.05) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr", min_group_rows=min(30, rows),
        integration_points=65, random_seed=args.seed,
    )
    model_set = GroupByModelSet.train(
        sample_x=x, sample_y=y, sample_groups=g,
        full_groups=g, full_x=x, full_y=y,
        table_name="ingest", x_columns=("x",), y_column="y",
        group_column="g", config=config, batched=True, streaming=True,
    )
    # A ~5% delta landing in ~10% of the groups.
    dirty_values = np.arange(max(1, groups // 10), dtype=np.float64)
    m = max(1, n // 20)
    dg = dirty_values[rng.integers(0, dirty_values.shape[0], size=m)]
    dx = rng.uniform(0.0, 100.0, size=m)
    dy = (1.0 + dg * 0.05) * dx + rng.normal(0.0, 1.0, size=m)
    start = time.perf_counter()
    dirty = model_set.refresh(dx, dy, dg)
    refresh_s = time.perf_counter() - start
    stream = model_set._stream
    start = time.perf_counter()
    oracle = GroupByModelSet.train(
        sample_x=stream.sample_x, sample_y=stream.sample_y,
        sample_groups=stream.sample_groups,
        full_groups=np.concatenate([g, dg]),
        full_x=np.concatenate([x, dx]),
        full_y=np.concatenate([y, dy]),
        table_name="ingest", x_columns=("x",), y_column="y",
        group_column="g", config=config, batched=True,
    )
    retrain_s = time.perf_counter() - start
    worst = 0.0
    ranges = {"x": (20.0, 60.0)}
    for func in ("COUNT", "SUM", "AVG"):
        aggregate = AggregateCall(func, "y")
        got = model_set.answer(aggregate, ranges, batched=True)
        expected = oracle.answer(aggregate, ranges, batched=True)
        for value, want in expected.items():
            have = got[value]
            if np.isnan(want) or np.isnan(have):
                if np.isnan(want) != np.isnan(have):
                    worst = float("inf")
                continue
            worst = max(worst, abs(have - want) / max(1.0, abs(want)))
    print(f"{'INGEST':<12} {retrain_s * 1e3:>8.2f}ms "
          f"{refresh_s * 1e3:>8.2f}ms "
          f"{retrain_s / refresh_s:>7.1f}x  "
          f"({len(dirty)}/{groups} groups dirty)")
    return worst


def measure_observability_overhead(
    groups: int, rows: int, seed: int, repeats: int = 9
) -> dict:
    """Serving CPU time with instrumentation off vs fully on.

    Runs the SERVE-leg workload through a fresh query server per
    measurement and estimates the relative cost of enabling metrics +
    tracing.  Methodology, chosen for stability on noisy shared boxes:

    * **CPU time** (``time.process_time``), not wall time — the
      instrumentation cost is pure CPU work, and wall time of a
      threaded server run carries multi-millisecond scheduler jitter
      that dwarfs a 5% budget.
    * **Representative per-query work** — the fixture is clamped to
      20 groups and at least 1000 rows/group regardless of the smoke
      run's ``--groups``/``--rows``; at toy sizes every answer costs
      microseconds and the fixed per-trace cost is measured against
      near-zero serving cost.
    * **Paired alternating runs** — ``repeats`` adjacent off/on pairs
      (order flipped each pair) after warm-up, combined as the smaller
      of the median per-pair ratio and the min-vs-min ratio.  Noise
      only ever inflates either estimator, so taking the lower of the
      two tightens the upper estimate of the true overhead.

    Returns ``{"off_s", "on_s", "overhead"}``: median CPU seconds per
    arm plus the overhead estimate (clamped at 0).
    """
    import statistics
    import time

    from repro.obs import disable_metrics, enable_metrics
    from repro.obs.trace import disable_tracing, enable_tracing
    from repro.serve import QueryServer

    engine, distinct = _serving_fixture(20, max(rows, 1000), seed)
    workload = distinct * 3
    engine.execute(workload[0])  # warm-up (evaluator stacking)

    def _run() -> float:
        with QueryServer(engine, n_workers=2) as server:
            start = time.process_time()
            server.run(workload)
            return time.process_time() - start

    _run()
    _run()  # warm both allocator and thread machinery before pairing
    samples: dict[bool, list[float]] = {False: [], True: []}
    for index in range(repeats):
        order = (True, False) if index % 2 else (False, True)
        for instrumented in order:
            if instrumented:
                enable_metrics()
                enable_tracing()
            else:
                disable_metrics()
                disable_tracing()
            try:
                samples[instrumented].append(_run())
            finally:
                disable_metrics()
                disable_tracing()
    paired = statistics.median(
        on / off for on, off in zip(samples[True], samples[False])
    )
    mins = min(samples[True]) / min(samples[False])
    overhead = max(0.0, min(paired, mins) - 1.0)
    return {
        "off_s": statistics.median(samples[False]),
        "on_s": statistics.median(samples[True]),
        "overhead": overhead,
    }


def _smoke_obs_leg(args: argparse.Namespace) -> float:
    """Instrumentation overhead on the SERVE workload; must stay < 5%.

    Prints one OBS row and best-effort records the measurement as the
    ``overhead`` entry of BENCH_serving.json (when the file exists).
    """
    import json

    result = measure_observability_overhead(args.groups, args.rows, args.seed)
    print(f"{'OBS':<12} {result['off_s'] * 1e3:>8.2f}ms "
          f"{result['on_s'] * 1e3:>8.2f}ms "
          f"{result['overhead'] * 100:>6.1f}%  (cpu, metrics+tracing on)")
    bench_path = Path(__file__).resolve().parents[2] / "BENCH_serving.json"
    try:
        record = json.loads(bench_path.read_text())
        record["overhead"] = {
            "baseline_s": round(result["off_s"], 6),
            "instrumented_s": round(result["on_s"], 6),
            "relative": round(result["overhead"], 4),
        }
        bench_path.write_text(json.dumps(record, indent=2) + "\n")
    except (OSError, ValueError):
        pass  # no bench record to annotate (installed package, CI cwd)
    return result["overhead"]


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Mixed-workload serving throughput vs naive sequential execute."""
    import time

    import numpy as np

    from repro.serve import QueryServer

    if args.groups < 1 or args.rows < 1 or args.queries < 1:
        print("error: bench-serve needs positive --groups/--rows/--queries",
              file=sys.stderr)
        return 2
    engine, distinct = _serving_fixture(args.groups, args.rows, args.seed)
    rng = np.random.default_rng(args.seed)
    workload = [distinct[i] for i in rng.integers(0, len(distinct), args.queries)]
    engine.execute(workload[0])  # warm-up (evaluator stacking)
    start = time.perf_counter()
    sequential = [engine.execute(sql) for sql in workload]
    sequential_s = time.perf_counter() - start
    with QueryServer(engine, n_workers=args.workers) as server:
        start = time.perf_counter()
        served = server.run(workload)
        served_s = time.perf_counter() - start
        stats = server.stats()
    worst = _serving_divergence(sequential, served)
    print(f"{args.queries} queries over {len(distinct)} templates, "
          f"{args.groups} groups, {args.workers} workers")
    print(f"sequential execute: {sequential_s:8.3f}s "
          f"({args.queries / sequential_s:8.0f} q/s)")
    print(f"query server:       {served_s:8.3f}s "
          f"({args.queries / served_s:8.0f} q/s)   "
          f"{sequential_s / served_s:.1f}x")
    print(f"{stats['batches']} batches, {stats['coalesced']} coalesced, "
          f"{stats['engine_calls']} engine calls, "
          f"{stats['answer_cache']['hits']} answer-cache hits, "
          f"{stats['plan_cache']['hits']} plan-cache hits")
    print(f"max divergence vs sequential: {worst:.2e}")
    if worst > 1e-9:
        print("error: served answers diverge from sequential execute "
              "beyond 1e-9", file=sys.stderr)
        return 2
    print("ok: coalesced/cached serving matches sequential execute")
    return 0


def _cmd_bench_smoke(args: argparse.Namespace) -> int:
    """Batched-vs-scalar GROUP BY check on small synthetic model sets."""
    import numpy as np

    if args.groups < 1 or args.rows < 1:
        print("error: bench-smoke needs --groups >= 1 and --rows >= 1",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    n = args.groups * args.rows
    groups = np.repeat(np.arange(args.groups), args.rows)
    x = rng.uniform(0.0, 100.0, size=n)
    y = (1.0 + groups * 0.1) * x + rng.normal(0.0, 1.0, size=n)
    config = DBEstConfig(
        regressor="plr", min_group_rows=min(30, args.rows),
        integration_points=65, random_seed=args.seed,
    )
    print(f"{'leg':<12} {'scalar':>10} {'batched':>10} {'speedup':>8}")
    train_worst, worst = _smoke_leg(
        "",
        dict(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="smoke", x_columns=("x",), y_column="y",
            group_column="g", config=config,
        ),
        {"x": (20.0, 60.0)},
        lambda batched, scalar: (
            (batched.density._centres, scalar.density._centres),
            (batched.density._weights, scalar.density._weights),
            (batched.regressor._coef, scalar.regressor._coef),
            (batched.regressor._knots, scalar.regressor._knots),
        ),
    )

    # MULTI leg: a two-column predicate through the product-kernel path.
    x2 = np.column_stack([x, rng.uniform(-5.0, 5.0, size=n)])
    y2 = (1.0 + groups * 0.1) * x2[:, 0] + 2.0 * x2[:, 1] \
        + rng.normal(0.0, 1.0, size=n)
    multi_config = DBEstConfig(
        regressor="linear", min_group_rows=min(30, args.rows),
        integration_points=65, random_seed=args.seed,
    )
    multi_train_worst, multi_worst = _smoke_leg(
        "MULTI-",
        dict(
            sample_x=x2, sample_y=y2, sample_groups=groups,
            full_groups=groups, full_x=x2, full_y=y2,
            table_name="smoke2", x_columns=("a", "b"), y_column="y",
            group_column="g", config=multi_config,
        ),
        {"a": (20.0, 60.0), "b": (-3.0, 3.0)},
        lambda batched, scalar: (
            (batched.density._centres, scalar.density._centres),
            (batched.density._weights, scalar.density._weights),
            (batched.density._h, scalar.density._h),
            (batched.regressor._coef, scalar.regressor._coef),
        ),
    )
    train_worst = max(train_worst, multi_train_worst)
    worst = max(worst, multi_worst)

    # FOREST leg: a boosted-tree model set through the level-synchronous
    # forest kernel vs the per-group fits (node thresholds/values must
    # match bit-for-bit; the divergence printed is over those arrays).
    forest_config = DBEstConfig(
        regressor="gboost", min_group_rows=min(30, args.rows),
        integration_points=65, random_seed=args.seed,
    )

    def _stage_nodes(model, key):
        return np.concatenate(
            [tree._nodes[key] for tree in model.regressor._trees]
        )

    forest_train_worst, forest_worst = _smoke_leg(
        "FOREST-",
        dict(
            sample_x=x, sample_y=y, sample_groups=groups,
            full_groups=groups, full_x=x, full_y=y,
            table_name="smoke3", x_columns=("x",), y_column="y",
            group_column="g", config=forest_config,
        ),
        {"x": (20.0, 60.0)},
        lambda batched, scalar: (
            (batched.density._centres, scalar.density._centres),
            (batched.density._weights, scalar.density._weights),
            (_stage_nodes(batched, "threshold"),
             _stage_nodes(scalar, "threshold")),
            (_stage_nodes(batched, "value"), _stage_nodes(scalar, "value")),
        ),
    )
    train_worst = max(train_worst, forest_train_worst)
    worst = max(worst, forest_worst)

    # SERVE leg: coalesced/cached serving vs sequential execute.
    serve_worst = _smoke_serve_leg(args)

    # MMAP leg: same workload served from a zero-copy mapped store.
    mmap_worst = _smoke_mmap_leg(args)
    serve_worst = max(serve_worst, mmap_worst)

    # FAULT leg: same workload from a faulty store; availability must
    # stay at 100% (exact answers or degraded, never unanswered).
    unanswered, _degraded, fault_worst = _smoke_fault_leg(args)
    serve_worst = max(serve_worst, fault_worst)

    # INGEST leg: append ~5% rows, dirty-group refresh vs full retrain.
    ingest_worst = _smoke_ingest_leg(args)
    worst = max(worst, ingest_worst)

    # OBS leg: the SERVE workload with metrics + tracing fully enabled
    # must stay within 5% of the uninstrumented q/s.
    obs_overhead = _smoke_obs_leg(args)
    print(f"max answer divergence over {args.groups} groups: {worst:.2e}; "
          f"max trained-parameter divergence: {train_worst:.2e}; "
          f"max serving divergence: {serve_worst:.2e}")
    if unanswered:
        print(f"error: {unanswered} queries went unanswered under injected "
              "store faults (availability < 100%)", file=sys.stderr)
        return 2
    if worst > 1e-9 or train_worst > 1e-9 or serve_worst > 1e-9:
        print("error: batched/scalar or served/sequential paths disagree "
              "beyond 1e-9", file=sys.stderr)
        return 2
    if obs_overhead >= 0.05:
        print(f"error: instrumentation overhead {obs_overhead * 100:.1f}% "
              "on the SERVE workload exceeds the 5% budget",
              file=sys.stderr)
        return 2
    print("ok: batched training and evaluation match the scalar oracles "
          "(1-D, multivariate and forest), coalesced serving matches "
          "sequential execute, the zero-copy mapped store matches the "
          "in-memory catalog, serving stayed available under injected "
          "faults, the streaming dirty-group refresh matches a full "
          "retrain, and instrumentation overhead stays under 5%")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "query": _cmd_query,
    "pack-store": _cmd_pack_store,
    "store-info": _cmd_store_info,
    "refresh-store": _cmd_refresh_store,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "advise": _cmd_advise,
    "bench-smoke": _cmd_bench_smoke,
    "bench-serve": _cmd_bench_serve,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
