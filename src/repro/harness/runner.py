"""Workload execution and error/latency collection.

Given a workload of SQL strings, a ground-truth engine, and one or more
engines under test, the runner executes every query everywhere, computes
per-query relative errors against the truth, and aggregates them the way
the paper's figures do (mean relative error per AF, mean latency per
engine, per-group error distributions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml.metrics import relative_error


@dataclass
class QueryRecord:
    """Outcome of one query on one engine."""

    sql: str
    aggregate: str
    engine: str
    estimate: float | dict
    truth: float | dict
    elapsed_seconds: float
    relative_error: float


@dataclass
class EngineRun:
    """All records for one engine over one workload."""

    engine: str
    records: list[QueryRecord] = field(default_factory=list)

    def mean_relative_error(self, aggregate: str | None = None) -> float:
        errors = [
            r.relative_error
            for r in self.records
            if (aggregate is None or r.aggregate == aggregate)
            and not math.isnan(r.relative_error)
        ]
        return float(np.mean(errors)) if errors else float("nan")

    def mean_latency(self) -> float:
        return float(np.mean([r.elapsed_seconds for r in self.records]))

    def total_latency(self) -> float:
        return float(np.sum([r.elapsed_seconds for r in self.records]))


def _scalar_error(truth: float, estimate: float) -> float:
    if isinstance(truth, float) and math.isnan(truth):
        return float("nan")
    return relative_error(truth, estimate)


def _grouped_error(truth: dict, estimate: dict) -> float:
    """Mean per-group relative error over the truth's groups.

    Groups the engine missed entirely count as 100 % error; spurious
    groups in the estimate are ignored (matching how the paper averages
    per-group errors).
    """
    errors = []
    for value, true_value in truth.items():
        if isinstance(true_value, float) and math.isnan(true_value):
            continue
        if value in estimate and not (
            isinstance(estimate[value], float) and math.isnan(estimate[value])
        ):
            errors.append(relative_error(true_value, estimate[value]))
        else:
            errors.append(1.0)
    return float(np.mean(errors)) if errors else float("nan")


def record_error(truth, estimate) -> float:
    """Relative error between matching scalar or grouped answers."""
    if isinstance(truth, dict) and isinstance(estimate, dict):
        return _grouped_error(truth, estimate)
    if isinstance(truth, dict) or isinstance(estimate, dict):
        return float("nan")
    return _scalar_error(float(truth), float(estimate))


def run_workload(
    engine,
    workload,
    truth_engine,
    engine_name: str | None = None,
) -> EngineRun:
    """Execute every workload query on ``engine``; score against truth."""
    name = engine_name or getattr(engine, "name", type(engine).__name__)
    run = EngineRun(engine=name)
    aggregates = getattr(workload, "aggregates", None)
    for i, sql in enumerate(workload):
        truth_result = truth_engine.execute(sql)
        result = engine.execute(sql)
        for agg_key, truth_value in truth_result.values.items():
            estimate = result.values.get(agg_key, float("nan"))
            run.records.append(
                QueryRecord(
                    sql=sql,
                    aggregate=(
                        aggregates[i] if aggregates else agg_key.split("(")[0]
                    ),
                    engine=name,
                    estimate=estimate,
                    truth=truth_value,
                    elapsed_seconds=result.elapsed_seconds,
                    relative_error=record_error(truth_value, estimate),
                )
            )
    return run


def compare_engines(
    engines: dict[str, object],
    workload,
    truth_engine,
) -> dict[str, EngineRun]:
    """Run the same workload on several engines."""
    return {
        name: run_workload(engine, workload, truth_engine, engine_name=name)
        for name, engine in engines.items()
    }


def summarize_by_aggregate(
    runs: dict[str, EngineRun],
    aggregates: tuple[str, ...] = ("COUNT", "SUM", "AVG"),
) -> list[dict]:
    """Rows of {engine, COUNT, SUM, AVG, OVERALL} mean relative errors —
    the shape of the paper's error bar charts."""
    rows = []
    for name, run in runs.items():
        row: dict = {"engine": name}
        for aggregate in aggregates:
            row[aggregate] = run.mean_relative_error(aggregate)
        row["OVERALL"] = run.mean_relative_error()
        rows.append(row)
    return rows


def per_group_errors(
    engine,
    sql: str,
    truth_engine,
) -> dict:
    """Per-group relative errors for one GROUP BY query (histogram data)."""
    truth = truth_engine.execute(sql)
    estimate = engine.execute(sql)
    truth_groups = next(iter(truth.values.values()))
    estimate_groups = next(iter(estimate.values.values()))
    errors = {}
    for value, true_value in truth_groups.items():
        if isinstance(true_value, float) and math.isnan(true_value):
            continue
        got = estimate_groups.get(value)
        if got is None or (isinstance(got, float) and math.isnan(got)):
            errors[value] = 1.0
        else:
            errors[value] = relative_error(true_value, got)
    return errors
