"""Small timing utilities shared by benches and the throughput experiment."""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager

# Worker-process global: the engine deserialised once per worker by
# _init_worker, reused for every query the worker drains.
_WORKER_ENGINE = None


@contextmanager
def stopwatch():
    """``with stopwatch() as t: ...; t.seconds`` — wall-clock timing."""

    class _Timer:
        seconds: float = 0.0

    timer = _Timer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start


def _init_worker(engine_bytes: bytes) -> None:
    from repro.core.parallel import limit_blas_threads

    global _WORKER_ENGINE
    limit_blas_threads(1)
    _WORKER_ENGINE = pickle.loads(engine_bytes)


def _run_query(sql: str):
    result = _WORKER_ENGINE.execute(sql)
    # Return only the values; QueryResult itself is picklable but the
    # caller just drains the workload.
    return result.values


def _warm_sleep(seconds: float) -> None:
    time.sleep(seconds)


def total_workload_time(
    engine,
    workload,
    n_processes: int = 1,
    mode: str = "process",
) -> float:
    """Wall-clock time to drain a workload with ``n_processes`` workers.

    This is the paper's inter-query-parallelism throughput experiment
    (§4.7.2): each query runs single-threaded, but ``n_processes``
    queries run concurrently.  ``mode="process"`` replicates the paper's
    multi-process workaround for the GIL (each worker deserialises its
    own engine copy during pool start-up, which is excluded from the
    timed window); ``mode="thread"`` is available for engines that are
    not picklable.
    """
    queries = list(workload)
    if n_processes <= 1:
        start = time.perf_counter()
        for sql in queries:
            engine.execute(sql)
        return time.perf_counter() - start

    if mode == "thread":
        with ThreadPoolExecutor(max_workers=n_processes) as pool:
            start = time.perf_counter()
            list(pool.map(engine.execute, queries))
            return time.perf_counter() - start

    engine_bytes = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    with ProcessPoolExecutor(
        max_workers=n_processes,
        initializer=_init_worker,
        initargs=(engine_bytes,),
    ) as pool:
        # Force every worker to spawn and deserialise its engine before the
        # timed window: n_processes simultaneous sleeps occupy one worker
        # each, so the pool cannot satisfy them without starting all.
        warm = [pool.submit(_warm_sleep, 0.2) for _ in range(n_processes)]
        for future in warm:
            future.result()
        start = time.perf_counter()
        list(pool.map(_run_query, queries))
        return time.perf_counter() - start
