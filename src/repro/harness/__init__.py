"""Experiment harness: run query workloads against engines, collect
relative errors and latencies, and print paper-figure-shaped tables."""

from repro.harness.report import format_table, print_figure
from repro.harness.runner import (
    EngineRun,
    QueryRecord,
    compare_engines,
    run_workload,
    summarize_by_aggregate,
)

__all__ = [
    "EngineRun",
    "QueryRecord",
    "compare_engines",
    "format_table",
    "print_figure",
    "run_workload",
    "summarize_by_aggregate",
]
