"""Plain-text tables shaped like the paper's figures.

Benchmarks print these so a reader can compare measured series against
the published plots without a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0])
    rendered = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered
    )
    return f"{header}\n{divider}\n{body}"


def print_figure(
    figure_id: str,
    title: str,
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    notes: str | None = None,
) -> None:
    """Print one figure-shaped table with a header banner."""
    banner = f"== {figure_id}: {title} =="
    print()
    print(banner)
    print(format_table(rows, columns))
    if notes:
        print(f"   note: {notes}")


def histogram_rows(errors: dict, n_bins: int = 8) -> list[dict]:
    """Bucket per-group errors into histogram rows (paper Figs. 17/22/24)."""
    import numpy as np

    values = np.asarray(
        [v for v in errors.values() if not math.isnan(v)], dtype=float
    )
    if values.size == 0:
        return []
    counts, edges = np.histogram(values, bins=n_bins)
    return [
        {
            "error_bin": f"[{edges[i]*100:.1f}%, {edges[i+1]*100:.1f}%)",
            "groups": int(counts[i]),
        }
        for i in range(len(counts))
    ]
