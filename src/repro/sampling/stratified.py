"""Stratified sampling (BlinkDB-style).

A stratified sample caps the number of rows kept per stratum (distinct
value of a grouping column), guaranteeing rare groups are represented.
DBEst itself uses plain reservoir samples (paper §3), but the BlinkDB
baseline engine is built on this module, and an ablation bench compares
the two strategies for group-by model training.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table


def stratified_sample_indices(
    strata: np.ndarray,
    cap_per_stratum: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample at most ``cap_per_stratum`` row indices from each stratum.

    ``strata`` is the grouping column; each distinct value forms one
    stratum.  Returns sorted row indices.
    """
    if cap_per_stratum <= 0:
        raise InvalidParameterError(
            f"cap_per_stratum must be positive, got {cap_per_stratum}"
        )
    rng = rng or np.random.default_rng()
    strata = np.asarray(strata)
    order = np.argsort(strata, kind="stable")
    sorted_strata = strata[order]
    boundaries = np.flatnonzero(sorted_strata[1:] != sorted_strata[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [strata.shape[0]]])

    picked: list[np.ndarray] = []
    for start, end in zip(starts, ends):
        group_rows = order[start:end]
        if group_rows.shape[0] <= cap_per_stratum:
            picked.append(group_rows)
        else:
            chosen = rng.choice(group_rows, size=cap_per_stratum, replace=False)
            picked.append(chosen)
    if not picked:
        return np.empty(0, dtype=np.intp)
    indices = np.concatenate(picked)
    indices.sort()
    return indices.astype(np.intp, copy=False)


def stratified_sample_table(
    table: Table,
    stratify_on: str,
    cap_per_stratum: int,
    rng: np.random.Generator | None = None,
) -> Table:
    """Stratified row sample of a table on the given column."""
    indices = stratified_sample_indices(
        table[stratify_on], cap_per_stratum, rng=rng
    )
    return table.take(indices, name=f"{table.name}_stratified")
