"""Reservoir sampling (Vitter's Algorithm R and Li's Algorithm L).

The paper states DBEst "relies solely on reservoir sampling to generate
uniform samples over the original table".  Algorithm R is the classic
one-pass reservoir; Algorithm L skips ahead geometrically and touches only
O(k log(n/k)) stream items, which is what makes single-pass sampling of
very large tables cheap.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table


def _check_k(k: int) -> None:
    if k <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {k}")


def reservoir_sample_stream(
    stream: Iterable,
    k: int,
    rng: np.random.Generator | None = None,
) -> list:
    """Uniformly sample ``k`` items from an iterable of unknown length.

    Implements Algorithm L: after filling the reservoir, draw a geometric
    skip and replace a random slot, so runtime is dominated by the number
    of replacements, not the stream length.  Returns fewer than ``k``
    items when the stream is shorter than ``k``.
    """
    _check_k(k)
    rng = rng or np.random.default_rng()
    iterator: Iterator = iter(stream)

    reservoir: list = []
    for item in iterator:
        reservoir.append(item)
        if len(reservoir) == k:
            break
    if len(reservoir) < k:
        return reservoir

    # w tracks the k-th largest of n uniform draws, updated multiplicatively.
    w = math.exp(math.log(rng.random()) / k)
    position = k
    skip = math.floor(math.log(rng.random()) / math.log1p(-w))
    target = position + skip + 1
    for item in iterator:
        position += 1
        if position == target:
            reservoir[rng.integers(0, k)] = item
            w *= math.exp(math.log(rng.random()) / k)
            skip = math.floor(math.log(rng.random()) / math.log1p(-w))
            target = position + skip + 1
    return reservoir


def reservoir_sample_indices(
    n: int,
    k: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Uniform sample of ``min(k, n)`` row indices from ``range(n)``.

    When the population size is known (our in-memory tables), a uniform
    sample of indices is statistically identical to a reservoir pass; we
    use the generator's ``choice`` without replacement, which is both exact
    and fast.  Indices come back sorted so downstream gathers are cache
    friendly.
    """
    _check_k(k)
    if n < 0:
        raise InvalidParameterError(f"population size must be >= 0, got {n}")
    rng = rng or np.random.default_rng()
    if k >= n:
        return np.arange(n, dtype=np.intp)
    indices = rng.choice(n, size=k, replace=False)
    indices.sort()
    return indices.astype(np.intp, copy=False)


def reservoir_sample_table(
    table: Table,
    k: int,
    rng: np.random.Generator | None = None,
) -> Table:
    """Uniform row sample of a table, via :func:`reservoir_sample_indices`."""
    indices = reservoir_sample_indices(table.n_rows, k, rng=rng)
    return table.take(indices, name=f"{table.name}_sample")
