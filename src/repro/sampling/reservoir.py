"""Reservoir sampling (Vitter's Algorithm R and Li's Algorithm L).

The paper states DBEst "relies solely on reservoir sampling to generate
uniform samples over the original table".  Algorithm R is the classic
one-pass reservoir; Algorithm L skips ahead geometrically and touches only
O(k log(n/k)) stream items, which is what makes single-pass sampling of
very large tables cheap.

:class:`StreamingReservoir` extends the one-shot pass to *streaming
ingest*: per-group strata whose Algorithm-L skip state persists across
batches, so appended rows merge into the standing sample weighted by how
many rows each stratum has already absorbed.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

# Largest double below 1.0: clamping Algorithm L's w here keeps
# log1p(-w) finitely negative even when the multiplicative update
# rounds w up to 1.0 (possible for tiny k, where exp(log(u)/k) ~ 1).
_W_MAX = math.nextafter(1.0, 0.0)


def _check_k(k: int) -> None:
    if k <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {k}")


def _log_uniform(rng: np.random.Generator) -> float:
    """``log`` of a uniform draw from (0, 1].

    ``rng.random()`` draws from [0, 1): a zero draw (one in 2**53, but
    real — and deterministic under a seeded generator that happens to
    hit it) would make ``math.log`` raise.  Re-drawing preserves the
    conditional distribution exactly.
    """
    u = rng.random()
    while u <= 0.0:  # pragma: no cover - one-in-2**53 draw
        u = rng.random()
    return math.log(u)


def reservoir_sample_stream(
    stream: Iterable,
    k: int,
    rng: np.random.Generator | None = None,
) -> list:
    """Uniformly sample ``k`` items from an iterable of unknown length.

    Implements Algorithm L: after filling the reservoir, draw a geometric
    skip and replace a random slot, so runtime is dominated by the number
    of replacements, not the stream length.  Returns fewer than ``k``
    items when the stream is shorter than ``k``.
    """
    _check_k(k)
    rng = rng or np.random.default_rng()
    iterator: Iterator = iter(stream)

    reservoir: list = []
    for item in iterator:
        reservoir.append(item)
        if len(reservoir) == k:
            break
    if len(reservoir) < k:
        return reservoir

    # w tracks the k-th largest of n uniform draws, updated multiplicatively.
    # Clamped below 1.0: for tiny k, exp(log(u)/k) can round to exactly 1.0
    # and log1p(-w) would then be -0.0 (division by zero in the skip draw).
    w = min(math.exp(_log_uniform(rng) / k), _W_MAX)
    position = k
    skip = math.floor(_log_uniform(rng) / math.log1p(-w))
    target = position + skip + 1
    for item in iterator:
        position += 1
        if position == target:
            reservoir[rng.integers(0, k)] = item
            w = min(w * math.exp(_log_uniform(rng) / k), _W_MAX)
            skip = math.floor(_log_uniform(rng) / math.log1p(-w))
            target = position + skip + 1
    return reservoir


def reservoir_sample_indices(
    n: int,
    k: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Uniform sample of ``min(k, n)`` row indices from ``range(n)``.

    When the population size is known (our in-memory tables), a uniform
    sample of indices is statistically identical to a reservoir pass; we
    use the generator's ``choice`` without replacement, which is both exact
    and fast.  Indices come back sorted so downstream gathers are cache
    friendly.
    """
    _check_k(k)
    if n < 0:
        raise InvalidParameterError(f"population size must be >= 0, got {n}")
    rng = rng or np.random.default_rng()
    if k >= n:
        return np.arange(n, dtype=np.intp)
    indices = rng.choice(n, size=k, replace=False)
    indices.sort()
    return indices.astype(np.intp, copy=False)


def reservoir_sample_table(
    table: Table,
    k: int,
    rng: np.random.Generator | None = None,
) -> Table:
    """Uniform row sample of a table, via :func:`reservoir_sample_indices`."""
    indices = reservoir_sample_indices(table.n_rows, k, rng=rng)
    return table.take(indices, name=f"{table.name}_sample")


class _Stratum:
    """Algorithm-L state for one group's reservoir."""

    __slots__ = ("capacity", "size", "seen", "w", "target")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.size = 0
        self.seen = 0
        self.w = 0.0  # k-th largest uniform so far; 0.0 while still filling
        self.target = 0  # absolute 1-based position of the next accepted item

    def __getstate__(self) -> tuple:
        return (self.capacity, self.size, self.seen, self.w, self.target)

    def __setstate__(self, state: tuple) -> None:
        self.capacity, self.size, self.seen, self.w, self.target = state


class StreamingReservoir:
    """Per-group reservoir strata that absorb appended batches online.

    One stratum per group value runs Li's Algorithm L continuously: the
    skip state (``w`` and the next accept position) persists across
    batches, so feeding rows in any batch split yields *exactly* the
    decisions a single sequential pass would make.  Keeping a stratum
    per group means each group's sample stays a uniform ``k``-of-``n``
    reservoir over that group's own rows — group frequencies are
    tracked exactly by the caller's population counts, so they stay
    unbiased no matter how skewed the appends are.

    The class makes *decisions only*; it never stores rows.
    :meth:`absorb` returns ``(batch_pos, slot)`` pairs — ``slot == -1``
    appends batch row ``batch_pos`` to the stratum's sample, ``slot >=
    0`` overwrites that sample slot (when several decisions hit one
    slot, the last wins, matching the sequential algorithm).  The
    caller owns the actual sample arrays and applies the edits.

    Strata seeded from a pre-existing sample (``seed_group``) resume
    with ``w`` drawn from Beta(k, n - k + 1) — the exact distribution
    of Algorithm L's threshold after ``n`` items — which is the
    weighted part of the merge: a stratum that has already seen many
    rows accepts new ones with the correspondingly small probability.
    A mutex guards every mutation (concurrent ingest threads), and the
    state pickles cleanly so it can ride inside a stored model.
    """

    def __init__(
        self,
        default_capacity: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        _check_k(default_capacity)
        self.default_capacity = int(default_capacity)
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self._strata: dict = {}
        self._lock = threading.Lock()

    # -- introspection -------------------------------------------------
    def __contains__(self, value) -> bool:
        return value in self._strata

    def values(self) -> list:
        return list(self._strata)

    def size(self, value) -> int:
        """Current sample size of ``value``'s stratum."""
        return self._strata[value].size

    def seen(self, value) -> int:
        """Total rows the stratum has absorbed (population of the group)."""
        return self._strata[value].seen

    def capacity(self, value) -> int:
        return self._strata[value].capacity

    # -- lifecycle -----------------------------------------------------
    def seed_group(
        self,
        value,
        size: int,
        seen: int,
        capacity: int | None = None,
    ) -> None:
        """Adopt an existing uniform ``size``-of-``seen`` sample for ``value``.

        ``capacity`` defaults to ``size`` (the stratum is full and future
        rows enter by replacement only).  Passing ``capacity > size``
        lets the stratum grow, but note the recency bias: the next
        ``capacity - size`` appended rows are accepted with probability
        one, so the sample is only uniform again once replacements have
        churned through it.
        """
        _check_k(size)
        if seen < size:
            raise InvalidParameterError(
                f"seen ({seen}) must be >= sample size ({size})"
            )
        cap = size if capacity is None else int(capacity)
        if cap < size:
            raise InvalidParameterError(
                f"capacity ({cap}) must be >= sample size ({size})"
            )
        with self._lock:
            if value in self._strata:
                raise InvalidParameterError(
                    f"group {value!r} is already tracked"
                )
            st = _Stratum(cap)
            st.size = int(size)
            st.seen = int(seen)
            if st.size == st.capacity:
                self._init_skip_state(st)
            self._strata[value] = st

    def _init_skip_state(self, st: _Stratum) -> None:
        """Draw ``w`` and the first skip for a just-filled stratum."""
        k = st.capacity
        if st.seen == k:
            # Fresh fill: Li's closed-form init, identical to
            # reservoir_sample_stream at the moment its reservoir fills.
            w = math.exp(_log_uniform(self._rng) / k)
        else:
            # Seeded mid-stream: the k-th largest of ``seen`` uniforms
            # is Beta(k, seen - k + 1) distributed.
            w = float(self._rng.beta(k, st.seen - k + 1))
        st.w = min(max(w, math.ulp(0.0)), _W_MAX)
        skip = math.floor(_log_uniform(self._rng) / math.log1p(-st.w))
        st.target = st.seen + skip + 1

    # -- ingest --------------------------------------------------------
    def absorb(self, value, m: int) -> list:
        """Absorb ``m`` new rows of group ``value``; return edit decisions.

        Returns ``[(batch_pos, slot), ...]`` in decision order, where
        ``batch_pos`` indexes the batch (0-based) and ``slot`` is ``-1``
        to append or a sample-slot index to overwrite.  Unknown groups
        start a fresh stratum of ``default_capacity``.
        """
        if m < 0:
            raise InvalidParameterError(f"batch size must be >= 0, got {m}")
        if m == 0:
            return []
        with self._lock:
            st = self._strata.get(value)
            if st is None:
                st = _Stratum(self.default_capacity)
                self._strata[value] = st
            decisions: list = []
            j = 0
            while st.size < st.capacity and j < m:
                decisions.append((j, -1))
                st.size += 1
                st.seen += 1
                j += 1
                if st.size == st.capacity:
                    self._init_skip_state(st)
            if st.size < st.capacity:
                return decisions  # batch exhausted while still filling
            # Skip phase: batch item i sits at absolute position
            # base + i + 1, where base is the seen-count before the batch.
            base = st.seen - j
            end = base + m
            k = st.capacity
            rng = self._rng
            while st.target <= end:
                i = st.target - base - 1
                decisions.append((i, int(rng.integers(0, k))))
                st.w = min(st.w * math.exp(_log_uniform(rng) / k), _W_MAX)
                skip = math.floor(_log_uniform(rng) / math.log1p(-st.w))
                st.target += skip + 1
            st.seen = end
            return decisions

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
