"""Uniform and Bernoulli sampling helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table


def uniform_sample_indices(
    n: int,
    k: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Simple random sample (without replacement) of ``min(k, n)`` indices."""
    if k <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {k}")
    rng = rng or np.random.default_rng()
    if k >= n:
        return np.arange(n, dtype=np.intp)
    indices = rng.choice(n, size=k, replace=False)
    indices.sort()
    return indices.astype(np.intp, copy=False)


def uniform_sample_table(
    table: Table,
    k: int,
    rng: np.random.Generator | None = None,
) -> Table:
    """Uniform row sample of a table."""
    indices = uniform_sample_indices(table.n_rows, k, rng=rng)
    return table.take(indices, name=f"{table.name}_sample")


def bernoulli_sample_indices(
    n: int,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Independently include each of ``n`` rows with probability ``fraction``."""
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"sampling fraction must be in (0, 1], got {fraction}"
        )
    rng = rng or np.random.default_rng()
    mask = rng.random(n) < fraction
    return np.flatnonzero(mask).astype(np.intp, copy=False)
