"""Sampling substrate.

DBEst relies solely on reservoir sampling to build uniform samples for
model training (paper §3 "Sampling"); the baseline engines additionally
use stratified sampling (BlinkDB-like) and hash/universe sampling on join
keys (VerdictDB-like).
"""

from repro.sampling.hashed import hash_sample_mask, hash_sample_table
from repro.sampling.reservoir import (
    StreamingReservoir,
    reservoir_sample_indices,
    reservoir_sample_stream,
    reservoir_sample_table,
)
from repro.sampling.stratified import stratified_sample_indices, stratified_sample_table
from repro.sampling.uniform import (
    bernoulli_sample_indices,
    uniform_sample_indices,
    uniform_sample_table,
)

__all__ = [
    "StreamingReservoir",
    "bernoulli_sample_indices",
    "hash_sample_mask",
    "hash_sample_table",
    "reservoir_sample_indices",
    "reservoir_sample_stream",
    "reservoir_sample_table",
    "stratified_sample_indices",
    "stratified_sample_table",
    "uniform_sample_indices",
    "uniform_sample_table",
]
