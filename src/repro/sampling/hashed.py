"""Hash (universe) sampling on join keys (VerdictDB-style).

Universe sampling hashes the join-key value and keeps a row iff the hash
falls below a threshold.  Because the decision depends only on the key,
sampling both join sides with the *same* hash and threshold preserves the
join: matching keys are either kept on both sides or dropped on both.
This is how sample-based AQP engines make sampled joins meaningful, and
how DBEst's second join strategy (paper §2.2) pre-joins large tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.table import Table

# splitmix64 constants — a cheap, well-mixed integer hash.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised splitmix64 of integer key values."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64(seed) * _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def hash_sample_mask(
    keys: np.ndarray,
    fraction: float,
    seed: int = 17,
) -> np.ndarray:
    """Boolean mask keeping rows whose hashed key falls in ``[0, fraction)``.

    Every row sharing a key value receives the same decision, so applying
    the same (fraction, seed) to both sides of a join yields an unbiased
    universe sample of the join with inclusion probability ``fraction``.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"sampling fraction must be in (0, 1], got {fraction}"
        )
    keys = np.asarray(keys)
    if keys.dtype.kind == "f":
        # Hash the bit pattern so equal floats hash equally.
        keys = keys.view(np.uint64) if keys.dtype == np.float64 else (
            keys.astype(np.float64).view(np.uint64)
        )
    elif keys.dtype.kind == "U":
        keys = np.asarray([hash(v) & 0xFFFFFFFFFFFFFFFF for v in keys.tolist()],
                          dtype=np.uint64)
    hashed = _splitmix64(keys.astype(np.uint64, copy=False), seed)
    if fraction >= 1.0:
        return np.ones(hashed.shape[0], dtype=bool)
    threshold = np.uint64(min(int(fraction * float(2**64 - 1)), 2**64 - 2))
    return hashed <= threshold


def hash_sample_table(
    table: Table,
    key_column: str,
    fraction: float,
    seed: int = 17,
) -> Table:
    """Universe sample of a table on its join-key column."""
    mask = hash_sample_mask(table[key_column], fraction, seed=seed)
    return table.filter(mask, name=f"{table.name}_hashed")
