"""Observability substrate: metrics registry, trace spans, exposition.

Every layer of the serving stack — the query server's admission /
coalescing / degrade machinery, the model store's retry and LRU
accounting, the batched kernels' pass timings, the streaming-ingest
refresh path, and the fault injector — reports into one process-global
:class:`MetricsRegistry` and, per query, into bounded
:class:`~repro.obs.trace.Trace` span buffers.  Both are off by default
and cost one global read plus a no-op call when disabled, so the hot
paths stay within their benchmarked budgets (the bench-smoke OBS leg
asserts < 5% serving overhead with everything enabled).

Enable and read back::

    from repro.obs import enable_metrics, render_prometheus
    from repro.obs.trace import enable_tracing

    registry = enable_metrics()
    traces = enable_tracing(maxlen=256)
    ...  # serve traffic
    print(render_prometheus(registry))      # Prometheus text format
    snapshot = registry.snapshot()          # JSON-able dict
    print(traces.slowest(1)[0].render())    # hop-by-hop latency

The same data is reachable without writing Python: ``python -m repro
stats`` prints one exposition for a store (optionally after replaying a
workload), and ``serve --metrics-every N`` streams JSON snapshots while
serving.

Exposition format
-----------------

:func:`render_prometheus` emits the Prometheus *text exposition format*
(version 0.0.4), one metric family at a time:

* a ``# TYPE <name> <counter|gauge|histogram>`` line introduces each
  family;
* each sample is ``name{label="value",...} <number>`` — label values
  are escaped (``\\``, ``"``, newline), numbers are integers where
  exact, ``repr`` floats otherwise, and ``+Inf`` spells infinity;
* histograms expand into cumulative ``<name>_bucket`` series carrying
  the ``le`` upper-bound label (``+Inf`` last, equal to
  ``<name>_count``), plus ``<name>_sum`` and ``<name>_count``.

Metric names follow Prometheus conventions: the ``repro_`` namespace
prefix, ``_total`` suffixes on counters, base units in seconds/bytes
(``repro_serve_batch_seconds``, ``repro_store_resident_bytes``).  The
JSON snapshot (:meth:`MetricsRegistry.snapshot`) carries the same
series keyed by ``name{labels}`` with histograms as bucket arrays plus
interpolated p50/p95/p99 estimates.
"""

from repro.obs.registry import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    register_global_collector,
    render_prometheus,
    set_registry,
)
from repro.obs.trace import (
    Span,
    Trace,
    TraceBuffer,
    disable_tracing,
    enable_tracing,
    span,
    trace_buffer,
)

__all__ = [
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "Trace",
    "TraceBuffer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_registry",
    "register_global_collector",
    "render_prometheus",
    "set_registry",
    "span",
    "trace_buffer",
]
