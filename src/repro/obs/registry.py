"""Thread-safe metrics registry: counters, gauges, streaming histograms.

The registry is the process-wide sink every instrumented layer writes
to.  Instruments are addressed by ``(name, labels)``; the first caller
of :meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram` for an address creates the
instrument, later callers share it.  All mutation is lock-protected per
instrument, so concurrent writers from the serving worker pool never
lose increments.

Disabled by default: :func:`get_registry` returns the shared
:data:`NULL_REGISTRY` whose instruments are no-op singletons, so a hot
path pays one function call and one attribute lookup when metrics are
off.  Code that wants to skip even argument construction guards on
``get_registry().enabled``.  :func:`enable_metrics` installs a live
registry process-wide; :func:`disable_metrics` restores the null one.

Histograms are fixed-bucket and streaming: an observation lands in one
bucket counter (plus a running sum/count), quantiles are estimated by
linear interpolation inside the covering bucket, and two snapshots with
identical boundaries merge by adding bucket counts — the property the
concurrency tests assert.

Collectors bridge pull-style sources: :meth:`MetricsRegistry.collect`
registers a callback (held via weak reference when it is a bound
method, so a closed server just drops out) that is invoked before every
:meth:`~MetricsRegistry.snapshot` / :func:`render_prometheus` to copy
an existing ``stats()`` surface into gauges — hot paths never pay for
metrics they already count elsewhere.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "register_global_collector",
    "render_prometheus",
    "set_registry",
]

#: Default bucket upper bounds for latency-style histograms (seconds).
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for ratio-style histograms (e.g. the
#: relative error bound quoted on a degraded answer).
RATIO_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0,
)

_INF = float("inf")


class Counter:
    """Monotonically increasing count (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket streaming histogram with interpolated quantiles.

    ``buckets`` are strictly increasing upper bounds; an implicit
    ``+Inf`` bucket catches the tail.  Observations update one bucket
    count plus the running sum/count under a lock, so the memory and
    per-observation cost are constant regardless of how many values
    stream through.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"buckets must be non-empty and strictly increasing: {buckets}"
            )
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """A point-in-time copy: bucket counts, sum, count, quantiles."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            the_sum = self._sum
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "sum": the_sum,
            "count": total,
            "p50": _quantile(self.buckets, counts, total, 0.50),
            "p95": _quantile(self.buckets, counts, total, 0.95),
            "p99": _quantile(self.buckets, counts, total, 0.99),
        }

    def quantile(self, q: float) -> float:
        snap = self.snapshot()
        return _quantile(
            tuple(snap["buckets"]), snap["counts"], snap["count"], q
        )

    @staticmethod
    def merge(left: dict, right: dict) -> dict:
        """Merge two :meth:`snapshot` dicts with identical boundaries."""
        if left["buckets"] != right["buckets"]:
            raise ValueError("cannot merge histograms with different buckets")
        counts = [a + b for a, b in zip(left["counts"], right["counts"])]
        total = left["count"] + right["count"]
        buckets = tuple(left["buckets"])
        return {
            "buckets": list(buckets),
            "counts": counts,
            "sum": left["sum"] + right["sum"],
            "count": total,
            "p50": _quantile(buckets, counts, total, 0.50),
            "p95": _quantile(buckets, counts, total, 0.95),
            "p99": _quantile(buckets, counts, total, 0.99),
        }


def _quantile(
    buckets: tuple[float, ...], counts: list, total: int, q: float
) -> float:
    """Estimate the q-quantile by interpolating inside its bucket.

    The +Inf bucket has no upper edge to interpolate toward, so a
    quantile landing there reports the last finite boundary (the
    standard Prometheus ``histogram_quantile`` convention).
    """
    if total <= 0:
        return float("nan")
    rank = q * total
    seen = 0.0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if seen + bucket_count >= rank:
            if i >= len(buckets):
                return buckets[-1]
            lo = 0.0 if i == 0 else buckets[i - 1]
            hi = buckets[i]
            fraction = (rank - seen) / bucket_count
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
        seen += bucket_count
    return buckets[-1]


# Collectors that outlive any single registry: sources registered while
# metrics were still off (a store built before enable_metrics), and
# process-wide singletons like the engine's parse-cache LRU.  Every live
# registry runs them before its own collectors; bound methods are held
# weakly so garbage-collected owners drop out.
_GLOBAL_COLLECTORS: list = []
_GLOBAL_LOCK = threading.Lock()


def register_global_collector(callback) -> None:
    """Register ``callback(registry)`` with every current/future registry.

    The process-wide counterpart of :meth:`MetricsRegistry.collect`:
    use it for sources that exist before metrics are enabled or that
    outlive any particular registry (module-level caches).  Bound
    methods are weakly referenced.
    """
    try:
        ref = weakref.WeakMethod(callback)
    except TypeError:
        ref = None
    with _GLOBAL_LOCK:
        _GLOBAL_COLLECTORS.append(ref if ref is not None else callback)


class MetricsRegistry:
    """Instruments addressed by ``(name, labels)`` plus pull collectors."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._collectors: list = []

    @staticmethod
    def _address(name: str, labels: dict | None) -> tuple:
        if not labels:
            return (name, ())
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        address = self._address(name, labels)
        with self._lock:
            instrument = self._counters.get(address)
            if instrument is None:
                instrument = self._counters[address] = Counter()
        return instrument

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        address = self._address(name, labels)
        with self._lock:
            instrument = self._gauges.get(address)
            if instrument is None:
                instrument = self._gauges[address] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        address = self._address(name, labels)
        with self._lock:
            instrument = self._histograms.get(address)
            if instrument is None:
                instrument = self._histograms[address] = Histogram(buckets)
        return instrument

    # -- pull collectors ----------------------------------------------------

    def collect(self, callback) -> None:
        """Register ``callback(registry)`` to run before every snapshot.

        Bound methods are held via :class:`weakref.WeakMethod` so a
        garbage-collected owner (a closed server, an evicted store)
        silently drops out of the collector list.
        """
        try:
            ref = weakref.WeakMethod(callback)
        except TypeError:
            ref = None
        with self._lock:
            self._collectors.append(ref if ref is not None else callback)

    def _run_collectors(self) -> None:
        with _GLOBAL_LOCK:
            global_collectors = list(_GLOBAL_COLLECTORS)
        with self._lock:
            collectors = list(self._collectors)
        dead = []
        for entry in global_collectors + collectors:
            callback = entry() if isinstance(entry, weakref.WeakMethod) else entry
            if callback is None:
                dead.append(entry)
                continue
            try:
                callback(self)
            except Exception:
                # A broken collector must never take down a snapshot.
                continue
        if dead:
            with self._lock:
                self._collectors = [
                    entry for entry in self._collectors if entry not in dead
                ]
            with _GLOBAL_LOCK:
                _GLOBAL_COLLECTORS[:] = [
                    entry for entry in _GLOBAL_COLLECTORS
                    if entry not in dead
                ]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able point-in-time dump of every instrument.

        Runs the registered collectors first, so pull-style sources
        (server/store/cache ``stats()``) are as fresh as the pushed
        counters.
        """
        self._run_collectors()
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                _address_text(address): instrument.value
                for address, instrument in sorted(counters.items())
            },
            "gauges": {
                _address_text(address): instrument.value
                for address, instrument in sorted(gauges.items())
            },
            "histograms": {
                _address_text(address): instrument.snapshot()
                for address, instrument in sorted(histograms.items())
            },
        }


def _address_text(address: tuple) -> str:
    name, labels = address
    if not labels:
        return name
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """The registry rendered in the Prometheus text exposition format.

    One ``# TYPE`` line per metric family, then one sample per
    ``(labels)`` series; histograms expand to cumulative ``_bucket``
    series (with the ``le`` label, ``+Inf`` last) plus ``_sum`` and
    ``_count``.  The output round-trips through any Prometheus
    text-format parser; ``tests/test_observability.py`` validates the
    grammar line by line.
    """
    if registry is None:
        registry = get_registry()
    registry._run_collectors()
    with registry._lock:
        counters = sorted(registry._counters.items())
        gauges = sorted(registry._gauges.items())
        histograms = sorted(registry._histograms.items())
    lines: list[str] = []
    seen_types: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for (name, labels), instrument in counters:
        _type_line(name, "counter")
        lines.append(
            f"{_address_text((name, labels))} "
            f"{_format_value(instrument.value)}"
        )
    for (name, labels), instrument in gauges:
        _type_line(name, "gauge")
        lines.append(
            f"{_address_text((name, labels))} "
            f"{_format_value(instrument.value)}"
        )
    for (name, labels), instrument in histograms:
        _type_line(name, "histogram")
        snap = instrument.snapshot()
        cumulative = 0
        edges = list(snap["buckets"]) + [_INF]
        for edge, bucket_count in zip(edges, snap["counts"]):
            cumulative += bucket_count
            series = labels + (("le", _format_value(edge)),)
            lines.append(
                f"{_address_text((name + '_bucket', series))} {cumulative}"
            )
        lines.append(
            f"{_address_text((name + '_sum', labels))} "
            f"{_format_value(snap['sum'])}"
        )
        lines.append(
            f"{_address_text((name + '_count', labels))} {snap['count']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


# -- the process-global registry (no-op by default) --------------------------


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    buckets = LATENCY_BUCKETS

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": [0] * (len(self.buckets) + 1),
            "sum": 0.0,
            "count": 0,
            "p50": float("nan"),
            "p95": float("nan"),
            "p99": float("nan"),
        }

    def quantile(self, q: float) -> float:
        return float("nan")


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Shared no-op registry: every accessor returns a no-op singleton.

    Instrumented hot paths call ``get_registry()`` unconditionally; with
    this registry installed the whole metrics pipeline costs one global
    read plus (at most) one no-op method call.  Paths that want to skip
    even argument construction branch on :attr:`enabled`.
    """

    enabled = False

    def counter(self, name: str, labels: dict | None = None) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, labels: dict | None = None) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def collect(self, callback) -> None:
        # Remembered process-wide: a source built while metrics were
        # off still shows up after enable_metrics().
        register_global_collector(callback)

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()

_active: "MetricsRegistry | NullRegistry" = NULL_REGISTRY


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The process-global registry (the no-op one unless enabled)."""
    return _active


def set_registry(registry: "MetricsRegistry | NullRegistry") -> None:
    global _active
    _active = registry


def enable_metrics(
    registry: "MetricsRegistry | None" = None,
) -> MetricsRegistry:
    """Install a live registry process-wide and return it."""
    global _active
    if registry is None:
        registry = (
            _active if isinstance(_active, MetricsRegistry) else MetricsRegistry()
        )
    _active = registry
    return registry


def disable_metrics() -> None:
    """Restore the shared no-op registry."""
    global _active
    _active = NULL_REGISTRY
