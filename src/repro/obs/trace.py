"""Per-query trace spans: explain where one request's latency went.

A :class:`Trace` is created when a request enters the serving layer and
finished when its future resolves; in between, :class:`Span` records —
wall time via ``time.perf_counter()``, CPU time via
``time.thread_time()`` — accumulate in the trace's bounded span list.
Completed traces land in a bounded ring buffer
(:class:`TraceBuffer`), so tracing a long-lived server holds a constant
amount of memory no matter how many queries flow through.

Propagation is by thread-local activation rather than call-signature
threading: the worker that serves a batch activates the batch leader's
trace (:func:`activate` / :func:`deactivate`), and any code below it —
the answer cache lookup, the store's retry loop, the batched
evaluator — opens spans with the module-level :func:`span` context
manager, which silently no-ops when no trace is active.  That keeps
deep layers (``repro.serve.store``, ``repro.core.batched``) free of
serving-layer plumbing while their work still shows up, correctly
nested, in the query's trace.

Tracing is off unless a ring buffer is installed
(:func:`enable_tracing`); the serving layer checks
:func:`trace_buffer` once per submit, so the disabled path costs one
global read per query.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "activate",
    "current_trace",
    "deactivate",
    "disable_tracing",
    "enable_tracing",
    "span",
    "trace_buffer",
]

#: Spans kept per trace; later spans are counted in ``dropped`` instead
#: of growing the list (a trace must stay bounded even for a query that
#: retries a store read hundreds of times).
MAX_SPANS = 64


class Span:
    """One timed hop inside a trace."""

    __slots__ = ("name", "start", "wall_s", "cpu_s", "depth")

    def __init__(
        self, name: str, start: float, wall_s: float, cpu_s: float, depth: int
    ) -> None:
        self.name = name
        self.start = start  # seconds since the trace began
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.depth = depth

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
        }


class Trace:
    """The spans of one query, bounded to :data:`MAX_SPANS`.

    Unsynchronised by design: a trace is only ever written by one
    thread at a time (the submitting thread creates it, then exactly
    one batch worker activates it, records spans, and finishes it), so
    the hot ``add_span`` path stays at a list append — per-trace locks
    measurably showed up in the bench-smoke OBS overhead leg.
    """

    __slots__ = (
        "name", "t0", "wall_s", "outcome", "spans", "dropped",
        "spans_bound", "_depth",
    )

    def __init__(self, name: str, max_spans: int = MAX_SPANS) -> None:
        self.name = name
        self.t0 = time.perf_counter()
        self.wall_s: float | None = None  # set by finish()
        self.outcome: str | None = None  # "model" / "cache" / "shed" / ...
        self.spans: list[Span] = []
        self.dropped = 0
        self.spans_bound = max_spans
        self._depth = 1  # 0 is the root query span

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        cpu_s: float = 0.0,
        depth: int = 1,
    ) -> None:
        """Record a pre-measured span (absolute perf_counter endpoints)."""
        if len(self.spans) >= self.spans_bound:
            self.dropped += 1
            return
        self.spans.append(
            Span(name, start - self.t0, end - start, cpu_s, depth)
        )

    def finish(self, end: float | None = None) -> None:
        self.wall_s = (
            time.perf_counter() if end is None else end
        ) - self.t0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "outcome": self.outcome,
            "dropped": self.dropped,
            "spans": [record.as_dict() for record in self.spans],
        }

    def render(self) -> str:
        """Human-readable hop-by-hop breakdown of this trace."""
        wall = self.wall_s if self.wall_s is not None else 0.0
        outcome = f" [{self.outcome}]" if self.outcome else ""
        lines = [f"{self.name}{outcome}  wall={wall * 1e3:.3f}ms"]
        for record in sorted(self.spans, key=lambda s: (s.start, s.depth)):
            indent = "  " * record.depth
            lines.append(
                f"{indent}{record.name}  wall={record.wall_s * 1e3:.3f}ms "
                f"cpu={record.cpu_s * 1e3:.3f}ms "
                f"@+{record.start * 1e3:.3f}ms"
            )
        if self.dropped:
            lines.append(f"  ... {self.dropped} span(s) dropped (bound)")
        return "\n".join(lines)


class TraceBuffer:
    """Bounded ring of completed traces (oldest evicted first)."""

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._ring: deque[Trace] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._completed = 0

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._ring.append(trace)
            self._completed += 1

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._ring)

    def slowest(self, n: int = 1) -> list[Trace]:
        """The ``n`` highest-wall-time completed traces, slowest first."""
        return sorted(
            self.traces(), key=lambda t: t.wall_s or 0.0, reverse=True
        )[:n]

    def snapshot(self) -> dict:
        with self._lock:
            ring = list(self._ring)
            completed = self._completed
        return {
            "completed": completed,
            "buffered": len(ring),
            "maxlen": self.maxlen,
            "traces": [trace.as_dict() for trace in ring],
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


# -- thread-local propagation ------------------------------------------------

_local = threading.local()
_buffer: TraceBuffer | None = None


def trace_buffer() -> TraceBuffer | None:
    """The installed ring buffer, or None when tracing is off."""
    return _buffer


def enable_tracing(maxlen: int = 256) -> TraceBuffer:
    """Install a fresh ring buffer; traces start recording."""
    global _buffer
    _buffer = TraceBuffer(maxlen=maxlen)
    return _buffer


def disable_tracing() -> None:
    global _buffer
    _buffer = None


def activate(trace: Trace | None) -> None:
    """Make ``trace`` the current thread's span target (None clears)."""
    _local.trace = trace


def deactivate() -> None:
    _local.trace = None


def current_trace() -> Trace | None:
    return getattr(_local, "trace", None)


class _SpanContext:
    """Context manager measuring one span into the active trace."""

    __slots__ = ("name", "trace", "_t0", "_cpu0")

    def __init__(self, name: str, trace: Trace) -> None:
        self.name = name
        self.trace = trace

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        trace = self.trace
        trace._depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        trace = self.trace
        trace._depth -= 1
        end = time.perf_counter()
        trace.add_span(
            self.name,
            self._t0,
            end,
            cpu_s=time.thread_time() - self._cpu0,
            depth=trace._depth,
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str):
    """Open a span on the current thread's trace (no-op when inactive)."""
    trace = getattr(_local, "trace", None)
    if trace is None:
        return _NULL_SPAN
    return _SpanContext(name, trace)
