"""Normalised-template plan cache: parse each query *shape* once.

``DBEst.execute`` re-parses every SQL string it sees; the engine-level
LRU (:func:`repro.core.engine._parse_validated`) removes that cost for
*identical* strings, but dashboard traffic mostly repeats templates with
different literals — ``... WHERE x BETWEEN 10 AND 20`` now, ``BETWEEN
30 AND 55`` a second later.  :class:`PlanCache` keys queries by their
normalised template (token stream with numeric literals abstracted out,
see :func:`repro.sql.parser.split_literals`): the first sighting of a
shape pays the full recursive-descent parse; every later sighting only
tokenizes, binds its literals into the cached skeleton, and runs the
(cheap, value-dependent) semantic validation.

Bound queries are fresh objects — callers may treat them as their own.
Thread-safe; the query server calls :meth:`parse` from every worker and
submitter thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.sql.ast import Query
from repro.sql.parser import bind_template, parse_template, split_literals
from repro.sql.validator import validate_query


class PlanCache:
    """Bounded LRU of parsed query skeletons keyed by template."""

    def __init__(self, max_plans: int = 256) -> None:
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = max_plans
        self._plans: OrderedDict[str, Query] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def parse(self, sql: str, validate: bool = True) -> Query:
        """Parse ``sql``, reusing the cached plan of its template.

        Raises exactly what ``parse_query`` + ``validate_query`` raise:
        syntax errors surface while normalising or (for the
        value-dependent reversed-BETWEEN check) while binding;
        validation runs on the *bound* query, since checks like
        PERCENTILE's p ∈ (0, 1) depend on the literals.
        """
        template, literals, slotted = split_literals(sql)
        with self._lock:
            skeleton = self._plans.get(template)
            if skeleton is not None:
                self._plans.move_to_end(template)
                self._hits += 1
        if skeleton is None:
            # Parse outside the lock; concurrent first sightings of one
            # template both parse, and the last insert wins (identical).
            skeleton = parse_template(slotted)
            with self._lock:
                self._misses += 1
                self._plans[template] = skeleton
                self._plans.move_to_end(template)
                while len(self._plans) > self.max_plans:
                    self._plans.popitem(last=False)
                    self._evictions += 1
        query = bind_template(skeleton, literals)
        if validate:
            validate_query(query)
        return query

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict:
        """Counters under the normalized cache schema.

        ``entries``/``max_entries`` are the canonical occupancy keys
        shared with :class:`~repro.serve.answer_cache.AnswerCache`;
        ``plans``/``max_plans`` remain as backward-compatible aliases.
        The dict is freshly built per call — mutating it cannot touch
        live cache state.
        """
        with self._lock:
            return {
                "entries": len(self._plans),
                "max_entries": self.max_plans,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                # Pre-normalization aliases (kept for existing callers).
                "plans": len(self._plans),
                "max_plans": self.max_plans,
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
