"""Bounded memoisation of per-aggregate answers.

Models are immutable once registered, so the answer to one
``(model, aggregate, bounds)`` triple never changes while a server is
up: the natural cache key is the *resolved*
:class:`~repro.core.catalog.ModelKey` (two query shapes that resolve to
the same superset model share an entry) plus the aggregate and the
merged range bounds.  This sits one layer above the memoised pdf-grid
machinery in :mod:`repro.core.batched`: a miss here that re-runs a
previously-seen bounds template still reuses the evaluator's cached exp
pass; a hit here skips the engine entirely.

Group-by answers are dicts; the cache stores and returns *copies* so a
caller mutating its result cannot poison later hits.

Thread-safe; keeps hit/miss/eviction counters for the server's stats.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.catalog import ModelKey
from repro.sql.ast import AggregateCall

Ranges = dict[str, tuple[float, float]]

_MISSING = object()


def answer_key(
    model_key: ModelKey,
    aggregate: AggregateCall,
    ranges: Ranges,
    equalities: tuple = (),
) -> tuple:
    """A hashable cache key for one aggregate evaluation.

    ``equalities`` carries categorical-selection predicates — the model
    key alone does not distinguish ``g = 1`` from ``g = 2``.
    """
    return (
        model_key,
        aggregate.func,
        aggregate.column,
        aggregate.parameter,
        tuple(sorted(ranges.items())),
        equalities,
    )


class AnswerCache:
    """Bounded LRU from :func:`answer_key` to a float or per-group dict."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self,
        key: tuple,
        version: int = 0,
        record: bool = True,
        copy: bool = True,
    ) -> object:
        """The cached answer, or the missing sentinel when absent.

        Entries are tagged with the ``version`` they were computed
        under (the serving layer passes the catalog version): an entry
        whose tag differs is dropped and reported missing, so an answer
        computed against a since-replaced model can never be served —
        even if it was ``put`` *after* an invalidation sweep cleared
        the cache.

        ``record=False`` leaves the hit/miss counters untouched — used
        for the double-check a worker makes after acquiring a model
        lock, so one logical lookup is not counted twice.
        ``copy=False`` returns the stored dict itself instead of a
        fresh copy; callers that make their own per-consumer copies
        (the query server fans one value out to a whole batch) pass it
        to avoid copying twice.
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is not _MISSING and entry[0] != version:
                del self._entries[key]  # computed against a stale catalog
                entry = _MISSING
            if entry is _MISSING:
                if record:
                    self._misses += 1
                return _MISSING
            self._entries.move_to_end(key)
            if record:
                self._hits += 1
            value = entry[1]
            return dict(value) if copy and isinstance(value, dict) else value

    def put(self, key: tuple, value: object, version: int = 0) -> None:
        """Store a private copy of ``value``, tagged with ``version``."""
        with self._lock:
            self._entries[key] = (
                version,
                dict(value) if isinstance(value, dict) else value,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, changed_model_keys, new_version: int) -> int:
        """Per-key invalidation sweep after a catalog version bump.

        Entries whose resolved :class:`ModelKey` (the first element of
        their :func:`answer_key`) is in ``changed_model_keys`` are
        evicted; every *other* entry is re-tagged to ``new_version`` —
        its model did not change, so its answer is still exact.  A
        computation that raced the sweep still can't poison the cache:
        it ``put``\\ s with the version it observed *before* the bump,
        which no later reader presents.

        Returns the number of entries evicted.
        """
        changed = set(changed_model_keys)
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                if key[0] in changed:
                    del self._entries[key]
                    dropped += 1
                else:
                    entry = self._entries[key]
                    if entry[0] != new_version:
                        self._entries[key] = (new_version, entry[1])
            self._evictions += dropped
        return dropped

    @staticmethod
    def missing(value: object) -> bool:
        """True when :meth:`get` found no entry."""
        return value is _MISSING

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
