"""Versioned on-disk model store with lazy loading and LRU eviction.

`ModelCatalog.save` pickles the whole model dict into one blob: loading
a warehouse of thousands of models means deserialising all of them up
front and keeping them resident forever.  :class:`ModelStore` replaces
the blob with a *directory* of per-model records:

* ``MANIFEST`` — magic + format-version header, then a pickled mapping
  of :class:`~repro.core.catalog.ModelKey` to record metadata (filename,
  payload bytes, model type name).  Opening a store reads only this.
* ``records/NNNNNN.model`` — one file per model, each with its own
  magic + format-version header followed by the pickled model.

Models load on first touch and live in an LRU keyed by their on-disk
record size; once the summed resident bytes exceed the configured
budget (``DBEstConfig.serve_cache_bytes``), the least-recently-touched
models are dropped back to disk.  An evicted model reloads
transparently on its next touch and — being a pure function of its
pickled parameters — answers bit-identically to its first life.

The read API mirrors :class:`~repro.core.catalog.ModelCatalog`
(``get`` / ``find`` / ``resolve`` / ``keys`` / ``__contains__`` /
``summary``), so a :class:`~repro.core.engine.DBEst` engine can serve
straight from a store::

    ModelStore.write(engine.catalog, "warehouse.store")
    serving = DBEst()
    serving.catalog = ModelStore("warehouse.store", cache_bytes=64 << 20)
    serving.execute("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")

All methods are thread-safe; the query server touches one store from
many workers.
"""

from __future__ import annotations

import os
import pickle
import random
import threading
import time
import uuid
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.catalog import (
    ModelCatalog,
    ModelKey,
    pack_header,
    resolve_model_key,
    split_header,
)
from repro.core.config import DBEstConfig
from repro.errors import CatalogError, CorruptRecordError, ModelNotFoundError
from repro.serve.faults import NO_FAULTS, STORE_LOAD, FaultInjector

MANIFEST_MAGIC = b"DBESTMAN"
RECORD_MAGIC = b"DBESTREC"
STORE_FORMAT_VERSION = 1

_MANIFEST_NAME = "MANIFEST"
_RECORDS_DIR = "records"
_QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class StoreRecord:
    """Manifest entry for one stored model.

    ``crc32`` is the checksum of the pickled payload (after the record
    header); None on manifests written before checksumming existed —
    those records skip CRC verification but still fail on bad
    magic/unpickle.
    """

    filename: str
    nbytes: int
    model_type: str
    crc32: int | None = None


class ModelStore:
    """Lazy, bounded-memory view over a directory of model records."""

    def __init__(
        self,
        path: str | Path,
        cache_bytes: int | None = None,
        config: DBEstConfig | None = None,
        retries: int | None = None,
        retry_backoff_ms: float | None = None,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        """Open an existing store; loads the manifest, no models.

        ``cache_bytes`` bounds the summed record sizes of resident
        models (0 = unbounded); when None it comes from
        ``config.serve_cache_bytes`` (or the default config's).
        ``retries``/``retry_backoff_ms`` bound the retry of transient
        ``OSError`` during record loads (defaults from config);
        ``faults`` is the injection harness hook for tests and chaos
        benches.
        """
        self.path = Path(path)
        defaults = config or DBEstConfig()
        if cache_bytes is None:
            cache_bytes = defaults.serve_cache_bytes
        if cache_bytes < 0:
            raise CatalogError(
                f"cache_bytes must be >= 0 (0 = unbounded), got {cache_bytes}"
            )
        self.cache_bytes = int(cache_bytes)
        self.retries = (
            defaults.serve_retries if retries is None else int(retries)
        )
        if self.retries < 0:
            raise CatalogError(
                f"retries must be >= 0, got {self.retries}"
            )
        self.retry_backoff_ms = (
            defaults.serve_retry_backoff_ms
            if retry_backoff_ms is None
            else float(retry_backoff_ms)
        )
        self._faults = faults
        # Deterministic backoff jitter: seeded per handle, not shared
        # global entropy, so a failing run replays identically.
        self._jitter = random.Random(0)
        self._lock = threading.Lock()
        self._records: dict[ModelKey, StoreRecord] = self._read_manifest()
        # Resident models in least-recently-touched-first order.
        self._resident: OrderedDict[ModelKey, object] = OrderedDict()
        self._resident_bytes = 0
        # Keys whose records failed integrity checks; their files sit in
        # the quarantine sidecar and every later touch fails fast.
        self._quarantined: dict[ModelKey, str] = {}
        self._hits = 0
        self._misses = 0
        self._loads = 0
        self._evictions = 0
        self._retries_used = 0

    # -- writing -----------------------------------------------------------

    @classmethod
    def write(
        cls,
        models: ModelCatalog | dict[ModelKey, object],
        path: str | Path,
        cache_bytes: int | None = None,
        config: DBEstConfig | None = None,
    ) -> "ModelStore":
        """Serialise a catalog (or key->model mapping) as a store.

        Overwrites any store already at ``path`` and returns an open
        handle with nothing resident.  Rewrites are crash-safe: each
        write is a fresh record *generation* (uniquely-named files) and
        the manifest is replaced atomically as the final step, so a
        crash mid-write leaves the previous manifest pointing at its
        own untouched records.  The previous generation's files are
        pruned after the swap — a handle opened on the *old* manifest
        in another process loses its records, so swap live-served
        warehouses by writing a fresh directory instead.
        """
        if isinstance(models, ModelCatalog):
            items = [(key, models.get(key)) for key in models.keys()]
        else:
            items = list(models.items())
        path = Path(path)
        records_dir = path / _RECORDS_DIR
        records_dir.mkdir(parents=True, exist_ok=True)
        header = pack_header(RECORD_MAGIC, STORE_FORMAT_VERSION)
        generation = uuid.uuid4().hex[:8]
        manifest: dict[ModelKey, StoreRecord] = {}
        for index, (key, model) in enumerate(items):
            if not isinstance(key, ModelKey):
                raise CatalogError(
                    f"store keys must be ModelKey, got {type(key).__name__}"
                )
            payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            filename = f"{generation}-{index:06d}.model"
            (records_dir / filename).write_bytes(header + payload)
            manifest[key] = StoreRecord(
                filename=filename,
                nbytes=len(payload),
                model_type=type(model).__name__,
                crc32=zlib.crc32(payload),
            )
        manifest_payload = pack_header(
            MANIFEST_MAGIC, STORE_FORMAT_VERSION
        ) + pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
        manifest_tmp = path / (_MANIFEST_NAME + ".tmp")
        manifest_tmp.write_bytes(manifest_payload)
        os.replace(manifest_tmp, path / _MANIFEST_NAME)
        # Prune records of previous, now-unreferenced generations.
        keep = {record.filename for record in manifest.values()}
        for stale in records_dir.glob("*.model"):
            if stale.name not in keep:
                stale.unlink()
        return cls(path, cache_bytes=cache_bytes, config=config)

    def _read_manifest(self) -> dict[ModelKey, StoreRecord]:
        manifest_path = self.path / _MANIFEST_NAME
        if not manifest_path.exists():
            raise CatalogError(
                f"{self.path} is not a model store (no {_MANIFEST_NAME} file)"
            )
        body = split_header(
            manifest_path.read_bytes(),
            MANIFEST_MAGIC,
            STORE_FORMAT_VERSION,
            f"store manifest {manifest_path}",
        )
        try:
            manifest = pickle.loads(body)
        except Exception as exc:
            raise CatalogError(
                f"store manifest {manifest_path} is corrupt: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CatalogError(
                f"store manifest {manifest_path} holds a "
                f"{type(manifest).__name__}, expected a record mapping"
            )
        return manifest

    # -- catalog-compatible read API ---------------------------------------

    def get(self, key: ModelKey) -> object:
        """The model for ``key``, loading its record on first touch.

        The disk read + unpickle happens *outside* the store lock, so a
        miss on one model never blocks hits (or other misses) on the
        rest of the warehouse.  Two threads missing on the same key
        both load; the first to re-acquire the lock wins and the
        duplicate is discarded.
        """
        with self._lock:
            if key in self._resident:
                self._resident.move_to_end(key)
                self._hits += 1
                return self._resident[key]
            quarantined = self._quarantined.get(key)
            if quarantined is not None:
                raise CorruptRecordError(quarantined)
            try:
                record = self._records[key]
            except KeyError:
                raise ModelNotFoundError(
                    f"no model registered for {key}"
                ) from None
            self._misses += 1
        model = self._load_record(key, record)
        with self._lock:
            self._loads += 1
            if key in self._resident:  # racing loader beat us to it
                self._resident.move_to_end(key)
                return self._resident[key]
            self._resident[key] = model
            self._resident_bytes += record.nbytes
            self._evict_over_budget(protect=key)
            return model

    def _load_record(self, key: ModelKey, record: StoreRecord) -> object:
        record_path = self.path / _RECORDS_DIR / record.filename
        if not record_path.exists():
            raise CatalogError(
                f"store record {record_path} for {key} is missing"
            )
        data = self._read_with_retry(record_path)
        try:
            body = split_header(
                data,
                RECORD_MAGIC,
                STORE_FORMAT_VERSION,
                f"store record {record_path}",
            )
            crc32 = getattr(record, "crc32", None)
            if crc32 is not None and zlib.crc32(body) != crc32:
                raise CatalogError(
                    f"store record {record_path} for {key} fails its CRC "
                    "check (payload bytes differ from what was written)"
                )
            model = pickle.loads(body)
        except CatalogError as exc:
            raise self._quarantine(key, record, record_path, exc) from exc
        except Exception as exc:
            reason = CatalogError(
                f"store record {record_path} for {key} is corrupt: {exc}"
            )
            raise self._quarantine(key, record, record_path, reason) from exc
        return model

    def _read_with_retry(self, record_path: Path) -> bytes:
        """Read record bytes, retrying transient ``OSError`` with
        jittered exponential backoff (fault hooks fire per attempt)."""
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                plan = self._faults.plan(STORE_LOAD)
                if plan.sleep_s:
                    time.sleep(plan.sleep_s)
                plan.raise_if_error()
                data = record_path.read_bytes()
                if plan.corrupt:
                    data = FaultInjector.corrupt_bytes(data)
                return data
            except OSError as exc:
                if attempt + 1 >= attempts:
                    raise CatalogError(
                        f"store record {record_path} failed to read after "
                        f"{attempts} attempt(s): {exc}"
                    ) from exc
                backoff_s = (
                    self.retry_backoff_ms
                    / 1000.0
                    * (2.0**attempt)
                    * (0.5 + self._jitter.random())
                )
                with self._lock:
                    self._retries_used += 1
                if backoff_s > 0.0:
                    time.sleep(backoff_s)
        raise AssertionError("unreachable")  # pragma: no cover

    def _quarantine(
        self,
        key: ModelKey,
        record: StoreRecord,
        record_path: Path,
        reason: CatalogError,
    ) -> CorruptRecordError:
        """Move a bad record to the sidecar dir and mark the key.

        Returns (does not raise) the error for the caller to raise with
        proper chaining.  Later touches of the key fail fast from the
        in-memory quarantine set instead of re-reading poisoned bytes —
        one bad record must not turn every subsequent hit into a fresh
        disk read + unpickle attempt.
        """
        quarantine_dir = self.path / _QUARANTINE_DIR
        sidecar = quarantine_dir / record.filename
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(record_path, sidecar)
            moved = f"; record moved to {sidecar}"
        except OSError:
            # The record may be gone or the dir unwritable mid-fault;
            # the in-memory marker alone still prevents poisoning.
            moved = ""
        message = f"{reason} (quarantined{moved})"
        with self._lock:
            self._quarantined.setdefault(key, message)
        return CorruptRecordError(message)

    def _evict_over_budget(self, protect: ModelKey) -> None:
        """Drop least-recently-touched models until under budget.

        The just-touched key is never evicted, even when a single model
        exceeds the whole budget — the caller holds a reference anyway,
        so evicting it would save nothing.
        """
        if self.cache_bytes <= 0:
            return
        while self._resident_bytes > self.cache_bytes and len(self._resident) > 1:
            oldest = next(iter(self._resident))
            if oldest == protect:
                break
            self._resident.pop(oldest)
            self._resident_bytes -= self._records[oldest].nbytes
            self._evictions += 1

    def resolve(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> ModelKey:
        """The stored key answering a query — resolved against the
        manifest alone, without loading any model."""
        return resolve_model_key(self._records, table, x_columns, y_column, group_by)

    def find(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> object:
        """Resolve and (lazily) load the model answering a query."""
        return self.get(self.resolve(table, x_columns, y_column, group_by))

    @property
    def version(self) -> int:
        """Always 0: one open store handle is an immutable generation
        (its manifest is read once), so memoised answers never go stale."""
        return 0

    def keys(self) -> list[ModelKey]:
        return list(self._records)

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> list[dict]:
        """One description dict per stored model (manifest only)."""
        rows = []
        with self._lock:
            for key, record in self._records.items():
                rows.append(
                    {
                        "table": key.table,
                        "x_columns": key.x_columns,
                        "y_column": key.y_column,
                        "group_by": key.group_by,
                        "type": record.model_type,
                        "record_bytes": record.nbytes,
                        "resident": key in self._resident,
                    }
                )
        return rows

    def total_size_bytes(self) -> int:
        """Summed on-disk record payload sizes (space-overhead metric)."""
        return sum(record.nbytes for record in self._records.values())

    # -- residency management ----------------------------------------------

    def loaded_keys(self) -> list[ModelKey]:
        """Keys currently resident, least-recently-touched first."""
        with self._lock:
            return list(self._resident)

    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    def evict_all(self) -> None:
        """Drop every resident model; the next touch reloads from disk."""
        with self._lock:
            self._evictions += len(self._resident)
            self._resident.clear()
            self._resident_bytes = 0

    def quarantined_keys(self) -> list[ModelKey]:
        """Keys whose records failed integrity checks this session."""
        with self._lock:
            return list(self._quarantined)

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt record files are moved on detection."""
        return self.path / _QUARANTINE_DIR

    def stats(self) -> dict:
        """Hit/miss/load/eviction counters and residency occupancy."""
        with self._lock:
            return {
                "models": len(self._records),
                "resident": len(self._resident),
                "resident_bytes": self._resident_bytes,
                "budget_bytes": self.cache_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "loads": self._loads,
                "evictions": self._evictions,
                "retries": self._retries_used,
                "quarantined": len(self._quarantined),
            }

    def __repr__(self) -> str:
        return (
            f"ModelStore(path={str(self.path)!r}, models={len(self._records)}, "
            f"resident={len(self._resident)}, budget={self.cache_bytes})"
        )
