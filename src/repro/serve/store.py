"""Versioned on-disk model store with lazy loading and LRU eviction.

`ModelCatalog.save` pickles the whole model dict into one blob: loading
a warehouse of thousands of models means deserialising all of them up
front and keeping them resident forever.  :class:`ModelStore` replaces
the blob with a *directory* of per-model records:

* ``MANIFEST`` — magic + format-version header, then a pickled mapping
  of :class:`~repro.core.catalog.ModelKey` to record metadata (filename,
  payload bytes, model type name, record format).  Opening a store
  reads only this.
* ``records/NNNNNN.model`` — one file per model, each with its own
  magic + record-version header.

Models load on first touch and live in an LRU keyed by their heap
charge; once the summed resident bytes exceed the configured budget
(``DBEstConfig.serve_cache_bytes``), the least-recently-touched models
are dropped back to disk.  An evicted model reloads transparently on
its next touch and — being a pure function of its stored parameters —
answers bit-identically to its first life.

Record formats
==============

Two record formats share the ``DBESTREC`` magic and are distinguished
by the record version in the header (``fmt`` in the manifest entry):

**Pickle records (version 1).**  ``header | pickle(model)``, CRC32 of
the pickled payload in the manifest.  Any model type; loading
unpickles the whole object onto the heap.

**Mapped records (version 2)** — the zero-copy format for group-by
model sets.  Layout::

    offset  bytes  content
    0       10     header: 8-byte magic "DBESTREC" + u16-LE version (2)
    10      8      u64-LE length of the metadata blob
    18      L      metadata blob: pickled dict with keys
                     "set"       group-set identity (table, columns,
                                 group values, config)
                     "state"     evaluator state skeleton with each
                                 array replaced by a named placeholder
                     "segments"  {name: (dtype.str, shape,
                                  relative offset, nbytes)}
                     "data_bytes" total segment-region length
    A       ...    segment region; A = align64(18 + L)

Every segment starts 64-byte aligned *relative to the region origin*,
and the origin itself is 64-byte aligned in the file, so each segment
is a cache-line- (and SIMD-) aligned ``np.memmap`` view.  The segments
are the :class:`~repro.core.batched.BatchedGroupEvaluator` CSR arrays —
mixture centres/weights/offsets, regressor state, the multivariate
product-mixture arrays, *and* the derived per-centre expansions — plus
one ``__fallback__`` uint8 segment holding the pickled
:class:`~repro.core.groupby.GroupByModelSet` for the rare non-batched
paths (per-group ``answer_group``, ``batched=False``); the fallback is
only unpickled when such a path is hit, so cold start never touches
its pages.

Loading a mapped record is an mmap + header check: no unpickling of
array data, no restacking.  The returned
:class:`MappedGroupByModelSet` answers group-by aggregates directly on
the mapped views; its worker-pool segments pickle as a ``(path,
n_chunks, index)`` reference — a few hundred bytes — and each worker
re-maps the same file, so forked pools share the page cache instead of
receiving copies of the CSR arrays.

The manifest CRC32 of a mapped record covers the metadata blob only:
verifying the (much larger) segment region would force a full read and
defeat lazy cold start.  Bit-rot inside segments is therefore not
self-detected; the fault-injection seam corrupts the prefix reads that
*are* CRC-checked, preserving the corrupt→quarantine semantics.

Record generations
==================

Record filenames are ``{generation}-{index:06d}.model``, where
``generation`` is a fresh 8-hex-digit id per write: ``write`` stamps
one generation across every record, while ``write_refresh(key, model)``
publishes a *single-key* generation — it writes the new record file,
swaps that key's manifest entry, and atomically replaces ``MANIFEST``
(via a ``.tmp`` + ``os.replace``), so the manifest always names exactly
one live generation per key and a crash mid-publish leaves the previous
manifest intact.  Superseded files are left on disk: readers that
mapped them (this process's live evaluators, or another process still
serving the old manifest) keep a valid record.  ``prune`` reclaims
dead generations — every ``records/*.model`` no manifest entry names —
skipping files a live mapping in this process still pins.  Each
``write_refresh`` bumps the open handle's ``version`` and appends the
key to a change-log (``changed_keys_since``), which is how the serving
layer invalidates exactly the refreshed keys' memoised answers.

Versioning rules: bumping the *record* version only affects new
records (old stores keep reading); the *manifest* version changes only
when the manifest mapping itself becomes incompatible.  Unknown
record versions fail with a :class:`~repro.errors.CatalogError` naming
found and expected versions.

The read API mirrors :class:`~repro.core.catalog.ModelCatalog`
(``get`` / ``find`` / ``resolve`` / ``keys`` / ``__contains__`` /
``summary``), so a :class:`~repro.core.engine.DBEst` engine can serve
straight from a store::

    ModelStore.write(engine.catalog, "warehouse.store")
    serving = DBEst()
    serving.catalog = ModelStore("warehouse.store", cache_bytes=64 << 20)
    serving.execute("SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2;")

All methods are thread-safe; the query server touches one store from
many workers.
"""

from __future__ import annotations

import os
import pickle
import random
import struct
import threading
import time
import uuid
import weakref
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.batched import BatchedGroupEvaluator
from repro.core.catalog import (
    ModelCatalog,
    ModelKey,
    pack_header,
    resolve_model_key,
    split_header,
)
from repro.core.config import DBEstConfig
from repro.core.groupby import GroupByModelSet
from repro.errors import CatalogError, CorruptRecordError, ModelNotFoundError
from repro.obs import get_registry
from repro.obs.trace import span as _span
from repro.serve.faults import NO_FAULTS, STORE_LOAD, FaultInjector

MANIFEST_MAGIC = b"DBESTMAN"
RECORD_MAGIC = b"DBESTREC"
STORE_FORMAT_VERSION = 1
#: Record version of the memory-mappable format (see module docstring).
MAPPED_RECORD_VERSION = 2

_MANIFEST_NAME = "MANIFEST"
_RECORDS_DIR = "records"
_QUARANTINE_DIR = "quarantine"

_STORE_FORMATS = ("pickle", "mmap")
_ALIGN = 64
_META_LEN = struct.Struct("<Q")
_HEADER_LEN = len(pack_header(RECORD_MAGIC, STORE_FORMAT_VERSION))
_FALLBACK_SEGMENT = "__fallback__"

# Every live memory-mapping of a record file, across all store handles
# in this process.  ``ModelStore.write`` consults it before pruning
# stale generations: a file some evaluator still has mapped keeps its
# *path* alive, because worker pools reconstruct pickled segments from
# that path (POSIX keeps the unlinked inode readable, but a reference
# by name would dangle).  WeakSet: a dropped mapping frees its file.
_LIVE_MAPPINGS: "weakref.WeakSet[_RecordMapping]" = weakref.WeakSet()
_MAPPINGS_LOCK = threading.Lock()


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class StoreRecord:
    """Manifest entry for one stored model.

    ``crc32`` is the checksum of the pickled payload (pickle records)
    or of the metadata blob (mapped records); None on manifests written
    before checksumming existed — those records skip CRC verification
    but still fail on bad magic/unpickle.  ``fmt`` distinguishes
    record formats ("pickle" | "mmap"); ``meta_nbytes`` is a mapped
    record's metadata-blob length (its heap charge and prefix-read
    length) and ``mapped_nbytes`` its segment-region length.  The new
    fields default for manifests written before the mapped format.
    """

    filename: str
    nbytes: int
    model_type: str
    crc32: int | None = None
    fmt: str = "pickle"
    meta_nbytes: int = 0
    mapped_nbytes: int = 0


class _RecordMapping:
    """One open memory-mapping of a mapped record file.

    Owns the ``np.memmap`` and the segment table; evaluators keep a
    reference so the mapping (and its registration in
    ``_LIVE_MAPPINGS``) lives exactly as long as some consumer of its
    views does.
    """

    def __init__(self, path: Path, mm: np.memmap, origin: int, spec: dict) -> None:
        self.path = Path(path).resolve()
        self._mm = mm
        self._origin = origin
        self._spec = spec
        with _MAPPINGS_LOCK:
            _LIVE_MAPPINGS.add(self)

    def view(self, name: str) -> np.ndarray:
        """Zero-copy (read-only) array view of one segment."""
        dtype_str, shape, offset, nbytes = self._spec[name]
        start = self._origin + offset
        return self._mm[start:start + nbytes].view(np.dtype(dtype_str)).reshape(shape)

    def segment_bytes(self, name: str) -> bytes:
        """One segment copied out as bytes (fallback unpickling)."""
        _dtype, _shape, offset, nbytes = self._spec[name]
        start = self._origin + offset
        return bytes(self._mm[start:start + nbytes])

    @property
    def mapped_nbytes(self) -> int:
        return sum(entry[3] for entry in self._spec.values())


def _parse_record_prefix(data: bytes, path) -> tuple[int, bytes]:
    """Split a mapped record's prefix into (meta length, meta blob)."""
    body = split_header(
        data, RECORD_MAGIC, MAPPED_RECORD_VERSION, f"store record {path}"
    )
    if len(body) < _META_LEN.size:
        raise CatalogError(f"store record {path} is truncated (no metadata length)")
    (meta_len,) = _META_LEN.unpack(body[:_META_LEN.size])
    meta_blob = body[_META_LEN.size:_META_LEN.size + meta_len]
    if len(meta_blob) != meta_len:
        raise CatalogError(
            f"store record {path} is truncated (metadata blob ends early)"
        )
    return meta_len, meta_blob


def _map_record_file(path: Path) -> tuple[dict, dict, _RecordMapping]:
    """Map one record file: (record meta, {name: array view}, mapping).

    The only I/O is the metadata prefix read; the segment region is
    mapped, not read, so the arrays fault in lazily page by page.
    """
    with open(path, "rb") as fh:
        prefix = fh.read(_HEADER_LEN + _META_LEN.size)
        body = split_header(
            prefix, RECORD_MAGIC, MAPPED_RECORD_VERSION, f"store record {path}"
        )
        if len(body) < _META_LEN.size:
            raise CatalogError(
                f"store record {path} is truncated (no metadata length)"
            )
        (meta_len,) = _META_LEN.unpack(body)
        meta_blob = fh.read(meta_len)
    if len(meta_blob) != meta_len:
        raise CatalogError(
            f"store record {path} is truncated (metadata blob ends early)"
        )
    try:
        rec_meta = pickle.loads(meta_blob)
    except Exception as exc:
        raise CatalogError(f"store record {path} is corrupt: {exc}") from exc
    origin = _align(_HEADER_LEN + _META_LEN.size + meta_len)
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    if mm.size < origin + rec_meta["data_bytes"]:
        raise CatalogError(
            f"store record {path} is truncated (segment region ends early)"
        )
    mapping = _RecordMapping(path, mm, origin, rec_meta["segments"])
    segments = {
        name: mapping.view(name)
        for name in rec_meta["segments"]
        if name != _FALLBACK_SEGMENT
    }
    return rec_meta, segments, mapping


def _load_mapped_segment(path: str, n_chunks: int, index: int):
    """Worker-side rebuild of one pickled evaluator segment.

    Re-maps the record file and re-runs the (deterministic) split: the
    pickled form of a mapped segment is this call's argument triple, a
    few hundred bytes, instead of the CSR arrays themselves.
    """
    rec_meta, segments, mapping = _map_record_file(Path(path))
    evaluator = BatchedGroupEvaluator.from_mapped(rec_meta["state"], segments)
    part = BatchedGroupEvaluator.split(evaluator, n_chunks)[index]
    return _MappedSegment(part, path, n_chunks, index, mapping)


class _MappedSegment(BatchedGroupEvaluator):
    """A split part of a mapped evaluator that pickles by reference."""

    def __init__(self, part: BatchedGroupEvaluator, record_path: str,
                 n_chunks: int, index: int, mapping: _RecordMapping) -> None:
        super().__init__(part.x_columns, part.y_column, part._m, part._r)
        self._record_path = record_path
        self._n_chunks = n_chunks
        self._index = index
        self._mapping = mapping

    def __reduce__(self):
        return (
            _load_mapped_segment,
            (self._record_path, self._n_chunks, self._index),
        )


class _MappedEvaluator(BatchedGroupEvaluator):
    """Evaluator over mapped views whose splits pickle by reference."""

    def __init__(self, x_columns, y_column, model_state, raw_state,
                 record_path: str, mapping: _RecordMapping) -> None:
        super().__init__(x_columns, y_column, model_state, raw_state)
        self._record_path = record_path
        self._mapping = mapping

    def split(self, n_chunks: int) -> list[BatchedGroupEvaluator]:
        parts = BatchedGroupEvaluator.split(self, n_chunks)
        if len(parts) == 1 and parts[0] is self:
            return parts
        return [
            _MappedSegment(part, self._record_path, n_chunks, i, self._mapping)
            for i, part in enumerate(parts)
        ]


def load_mapped_model(path: str | Path) -> "MappedGroupByModelSet":
    """Open one mapped record file as a servable group-by model set."""
    path = Path(path)
    rec_meta, segments, mapping = _map_record_file(path)
    state = rec_meta["state"]
    base = BatchedGroupEvaluator.from_mapped(state, segments)
    evaluator = _MappedEvaluator(
        base.x_columns, base.y_column, base._m, base._r, str(path), mapping
    )
    return MappedGroupByModelSet(rec_meta["set"], evaluator, mapping, str(path))


class MappedGroupByModelSet:
    """A group-by model set answering straight from mapped CSR arrays.

    Duck-type compatible with :class:`~repro.core.groupby.GroupByModelSet`
    on the serving surface (``answer`` / ``answer_group`` /
    ``group_values`` / ``n_groups`` / ``batched_evaluator``).  The
    batched GROUP BY path never touches the heap-model fallback; the
    per-group and ``batched=False`` paths (and any other attribute)
    transparently unpickle the record's ``__fallback__`` segment once
    and delegate.  Pickling produces a record-path reference, not the
    arrays.
    """

    def __init__(self, set_meta: dict, evaluator: _MappedEvaluator,
                 mapping: _RecordMapping, record_path: str) -> None:
        self.table_name = set_meta["table_name"]
        self.x_columns = list(set_meta["x_columns"])
        self.y_column = set_meta["y_column"]
        self.group_column = set_meta["group_column"]
        self.config = set_meta["config"]
        self._group_values = list(set_meta["group_values"])
        self._evaluator = evaluator
        self._mapping = mapping
        self._record_path = record_path
        self._fallback = None
        self._fallback_lock = threading.Lock()

    # -- GroupByModelSet serving surface ------------------------------------

    @property
    def group_values(self) -> list:
        return list(self._group_values)

    @property
    def n_groups(self) -> int:
        return len(self._group_values)

    def batched_evaluator(self):
        return self._evaluator

    def answer(self, aggregate, ranges, n_workers: int | None = None,
               batched: bool | None = None) -> dict:
        if batched is False:
            return self._hydrated().answer(
                aggregate, ranges, n_workers=n_workers, batched=False
            )
        workers = n_workers if n_workers is not None else self.config.n_workers
        # The shared fan-out/merge logic, run with this set as `self`:
        # it only needs n_groups and config, and the mapped evaluator's
        # split() hands workers path references instead of arrays.
        return GroupByModelSet._answer_batched(
            self, self._evaluator, aggregate, ranges, workers
        )

    def answer_group(self, value, aggregate, ranges) -> float:
        return self._hydrated().answer_group(value, aggregate, ranges)

    # -- fallback hydration --------------------------------------------------

    def _hydrated(self) -> GroupByModelSet:
        """The record's pickled heap model set, unpickled on first need."""
        model = self._fallback
        if model is None:
            with self._fallback_lock:
                if self._fallback is None:
                    blob = self._mapping.segment_bytes(_FALLBACK_SEGMENT)
                    self._fallback = pickle.loads(blob)
                model = self._fallback
        return model

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._hydrated(), name)

    def __reduce__(self):
        return (load_mapped_model, (self._record_path,))

    def __repr__(self) -> str:
        return (
            f"MappedGroupByModelSet(table={self.table_name!r}, "
            f"groups={self.n_groups}, record={self._record_path!r})"
        )


class ModelStore:
    """Lazy, bounded-memory view over a directory of model records."""

    MAX_CHANGELOG = 256

    def __init__(
        self,
        path: str | Path,
        cache_bytes: int | None = None,
        config: DBEstConfig | None = None,
        retries: int | None = None,
        retry_backoff_ms: float | None = None,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        """Open an existing store; loads the manifest, no models.

        ``cache_bytes`` bounds the summed heap charges of resident
        models (0 = unbounded); when None it comes from
        ``config.serve_cache_bytes`` (or the default config's).
        ``retries``/``retry_backoff_ms`` bound the retry of transient
        ``OSError`` during record loads (defaults from config);
        ``faults`` is the injection harness hook for tests and chaos
        benches.
        """
        self.path = Path(path)
        defaults = config or DBEstConfig()
        if cache_bytes is None:
            cache_bytes = defaults.serve_cache_bytes
        if cache_bytes < 0:
            raise CatalogError(
                f"cache_bytes must be >= 0 (0 = unbounded), got {cache_bytes}"
            )
        self.cache_bytes = int(cache_bytes)
        self.retries = (
            defaults.serve_retries if retries is None else int(retries)
        )
        if self.retries < 0:
            raise CatalogError(
                f"retries must be >= 0, got {self.retries}"
            )
        self.retry_backoff_ms = (
            defaults.serve_retry_backoff_ms
            if retry_backoff_ms is None
            else float(retry_backoff_ms)
        )
        self._faults = faults
        # Deterministic backoff jitter: seeded per handle, not shared
        # global entropy, so a failing run replays identically.
        self._jitter = random.Random(0)
        self._lock = threading.Lock()
        # Serialises write_refresh manifest swaps (reads stay on _lock).
        self._write_lock = threading.Lock()
        self._records: dict[ModelKey, StoreRecord] = self._read_manifest()
        # Monotonic handle version + change-log, mirroring ModelCatalog:
        # write_refresh bumps the version and logs the key, so serving
        # layers can invalidate exactly the republished keys' answers.
        self._version = 0
        self._changelog: list[tuple[int, ModelKey]] = []
        # Resident models in least-recently-touched-first order.
        self._resident: OrderedDict[ModelKey, object] = OrderedDict()
        self._resident_bytes = 0
        # Keys whose records failed integrity checks; their files sit in
        # the quarantine sidecar and every later touch fails fast.
        self._quarantined: dict[ModelKey, str] = {}
        self._hits = 0
        self._misses = 0
        self._loads = 0
        self._evictions = 0
        self._retries_used = 0
        # Pull-style metrics: the active registry harvests stats() at
        # snapshot time (no-op when metrics are disabled; the reference
        # is weak, so a dropped store handle detaches itself).
        get_registry().collect(self.publish_metrics)

    # -- writing -----------------------------------------------------------

    @classmethod
    def write(
        cls,
        models: ModelCatalog | dict[ModelKey, object],
        path: str | Path,
        cache_bytes: int | None = None,
        config: DBEstConfig | None = None,
        store_format: str | None = None,
    ) -> "ModelStore":
        """Serialise a catalog (or key->model mapping) as a store.

        ``store_format`` selects the record format (default from
        ``config.store_format``): "pickle" writes version-1 pickle
        records; "mmap" writes version-2 memory-mappable records for
        every group-by set the batched evaluator can stack (other
        models — scalar column sets, unbatchable group sets — fall
        back to pickle records in the same store).

        Overwrites any store already at ``path`` and returns an open
        handle with nothing resident.  Rewrites are crash-safe: each
        write is a fresh record *generation* (uniquely-named files) and
        the manifest is replaced atomically as the final step, so a
        crash mid-write leaves the previous manifest pointing at its
        own untouched records.  The previous generation's files are
        pruned after the swap — except files a live evaluator in this
        process still has mapped, which are left for a later write to
        prune once their readers are gone.  A handle opened on the
        *old* manifest in another process loses its records, so swap
        live-served warehouses by writing a fresh directory instead.
        """
        defaults = config or DBEstConfig()
        if store_format is None:
            store_format = getattr(defaults, "store_format", "pickle")
        if store_format not in _STORE_FORMATS:
            raise CatalogError(
                f"store_format must be one of {_STORE_FORMATS}, "
                f"got {store_format!r}"
            )
        if isinstance(models, ModelCatalog):
            items = [(key, models.get(key)) for key in models.keys()]
        else:
            items = list(models.items())
        path = Path(path)
        records_dir = path / _RECORDS_DIR
        records_dir.mkdir(parents=True, exist_ok=True)
        generation = uuid.uuid4().hex[:8]
        manifest: dict[ModelKey, StoreRecord] = {}
        for index, (key, model) in enumerate(items):
            if not isinstance(key, ModelKey):
                raise CatalogError(
                    f"store keys must be ModelKey, got {type(key).__name__}"
                )
            filename = f"{generation}-{index:06d}.model"
            manifest[key] = cls._pack_record(
                model, store_format, records_dir, filename
            )
        manifest_payload = pack_header(
            MANIFEST_MAGIC, STORE_FORMAT_VERSION
        ) + pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
        manifest_tmp = path / (_MANIFEST_NAME + ".tmp")
        manifest_tmp.write_bytes(manifest_payload)
        os.replace(manifest_tmp, path / _MANIFEST_NAME)
        # Prune records of previous, now-unreferenced generations —
        # unless a live mapping still holds the file (its path must
        # stay valid for worker-side segment reconstruction).
        keep = {record.filename for record in manifest.values()}
        with _MAPPINGS_LOCK:
            live = {mapping.path for mapping in _LIVE_MAPPINGS}
        for stale in records_dir.glob("*.model"):
            if stale.name in keep:
                continue
            try:
                if stale.resolve() in live:
                    continue
            except OSError:  # pragma: no cover - raced unlink
                continue
            stale.unlink()
        return cls(path, cache_bytes=cache_bytes, config=config)

    @classmethod
    def _pack_record(
        cls,
        model,
        store_format: str,
        records_dir: Path,
        filename: str,
    ) -> StoreRecord:
        """Write one model as a record file; return its manifest entry.

        Shared by the full ``write`` (every key gets one generation) and
        ``write_refresh`` (one key gets a *new* generation) — the full
        rewrite is just the everything-refreshed case.
        """
        if isinstance(model, MappedGroupByModelSet):
            # Repacking a mapped store: pickle the heap model, not
            # the wrapper (whose pickle is a path reference into
            # the very generation being replaced).
            model = model._hydrated()
        packed = (
            cls._pack_mapped_record(model)
            if store_format == "mmap"
            else None
        )
        if packed is not None:
            body, meta_nbytes, mapped_nbytes, crc = packed
            (records_dir / filename).write_bytes(body)
            return StoreRecord(
                filename=filename,
                nbytes=len(body),
                model_type=type(model).__name__,
                crc32=crc,
                fmt="mmap",
                meta_nbytes=meta_nbytes,
                mapped_nbytes=mapped_nbytes,
            )
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        (records_dir / filename).write_bytes(
            pack_header(RECORD_MAGIC, STORE_FORMAT_VERSION) + payload
        )
        return StoreRecord(
            filename=filename,
            nbytes=len(payload),
            model_type=type(model).__name__,
            crc32=zlib.crc32(payload),
        )

    def write_refresh(
        self,
        key: ModelKey,
        model,
        store_format: str | None = None,
    ) -> StoreRecord:
        """Publish a new record *generation* for one key.

        The streaming-ingest publish path: the model is written as a
        fresh uniquely-named record file, the manifest entry swaps to it
        and the ``MANIFEST`` is atomically replaced, the store version
        is bumped with the key logged (so a serving layer's
        ``changed_keys_since`` sweep invalidates exactly this key's
        memoised answers), and any resident copy is dropped — the next
        ``get`` loads the new generation.

        The superseded generation's file is deliberately **not**
        unlinked: readers in this process that still map it, and
        handles in other processes serving the old manifest, keep a
        valid record until :meth:`prune` reclaims dead generations.
        """
        if not isinstance(key, ModelKey):
            raise CatalogError(
                f"store keys must be ModelKey, got {type(key).__name__}"
            )
        with self._lock:
            old = self._records.get(key)
        if store_format is None:
            store_format = (
                getattr(old, "fmt", "pickle") if old is not None else "pickle"
            )
        if store_format not in _STORE_FORMATS:
            raise CatalogError(
                f"store_format must be one of {_STORE_FORMATS}, "
                f"got {store_format!r}"
            )
        records_dir = self.path / _RECORDS_DIR
        records_dir.mkdir(parents=True, exist_ok=True)
        generation = uuid.uuid4().hex[:8]
        record = self._pack_record(
            model, store_format, records_dir, f"{generation}-000000.model"
        )
        with self._write_lock:
            with self._lock:
                stale = self._records.get(key)
                if key in self._resident:
                    self._resident.pop(key)
                    if stale is not None:
                        self._resident_bytes -= self._record_charge(stale)
                self._records[key] = record
                self._quarantined.pop(key, None)
                self._version += 1
                self._changelog.append((self._version, key))
                if len(self._changelog) > self.MAX_CHANGELOG:
                    del self._changelog[: -self.MAX_CHANGELOG]
                manifest = dict(self._records)
            manifest_payload = pack_header(
                MANIFEST_MAGIC, STORE_FORMAT_VERSION
            ) + pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
            manifest_tmp = self.path / (_MANIFEST_NAME + ".tmp")
            manifest_tmp.write_bytes(manifest_payload)
            os.replace(manifest_tmp, self.path / _MANIFEST_NAME)
        registry = get_registry()
        if registry.enabled:
            registry.counter("repro_store_generations_published_total").inc()
            registry.counter(
                "repro_store_refresh_bytes_total"
            ).inc(record.nbytes)
        return record

    def prune(self) -> list[str]:
        """Unlink dead record generations; return the removed filenames.

        A file is dead when no manifest entry references it.  Files a
        live evaluator in this process still has mapped are kept (their
        paths must stay valid for worker-side segment reconstruction)
        and reclaimed by a later prune once their readers are released.
        """
        records_dir = self.path / _RECORDS_DIR
        if not records_dir.exists():
            return []
        with self._lock:
            keep = {record.filename for record in self._records.values()}
        with _MAPPINGS_LOCK:
            live = {mapping.path for mapping in _LIVE_MAPPINGS}
        removed: list[str] = []
        pinned = 0
        for stale in sorted(records_dir.glob("*.model")):
            if stale.name in keep:
                continue
            try:
                if stale.resolve() in live:
                    pinned += 1
                    continue
                stale.unlink()
            except OSError:  # pragma: no cover - raced unlink
                continue
            removed.append(stale.name)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_store_generations_pruned_total"
            ).inc(len(removed))
            registry.gauge("repro_store_generations_live").set(len(keep))
            registry.gauge("repro_store_generations_pinned").set(pinned)
        return removed

    def generations(self) -> dict:
        """Record-generation inventory (``store-info --generations``).

        Returns ``{"live": [...], "dead": [...]}``: one entry per
        record file on disk, where live files back a current manifest
        entry and dead ones await :meth:`prune` — ``pinned`` marks dead
        files a live evaluator in this process still has mapped.
        """
        records_dir = self.path / _RECORDS_DIR
        with self._lock:
            current = {
                record.filename: key for key, record in self._records.items()
            }
        with _MAPPINGS_LOCK:
            mapped = {mapping.path for mapping in _LIVE_MAPPINGS}
        live: list[dict] = []
        dead: list[dict] = []
        files = sorted(records_dir.glob("*.model")) if records_dir.exists() else []
        for path in files:
            if path.name in current:
                key = current[path.name]
                live.append(
                    {
                        "filename": path.name,
                        "table": key.table,
                        "x_columns": key.x_columns,
                        "y_column": key.y_column,
                        "group_by": key.group_by,
                    }
                )
            else:
                try:
                    pinned = path.resolve() in mapped
                except OSError:  # pragma: no cover - raced unlink
                    pinned = False
                dead.append({"filename": path.name, "pinned": pinned})
        return {"live": live, "dead": dead}

    @staticmethod
    def _pack_mapped_record(model) -> tuple[bytes, int, int, int] | None:
        """Serialise one model as a mapped record body, or None.

        Returns ``(body, meta_nbytes, mapped_nbytes, crc32)``; None
        when the model is not a group-by set the batched evaluator can
        stack (the caller writes a pickle record instead).
        """
        if not isinstance(model, GroupByModelSet):
            return None
        from repro.core.batched_train import export_group_state

        exported = export_group_state(model)
        if exported is None:
            return None
        meta, segments = exported
        fallback = np.frombuffer(
            pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8,
        )
        spec: dict = {}
        chunks: list[tuple[int, np.ndarray]] = []
        cursor = 0
        for name, arr in list(segments.items()) + [(_FALLBACK_SEGMENT, fallback)]:
            start = _align(cursor)
            spec[name] = (arr.dtype.str, tuple(arr.shape), start, arr.nbytes)
            chunks.append((start, arr))
            cursor = start + arr.nbytes
        rec_meta = {
            "set": {
                "table_name": model.table_name,
                "x_columns": tuple(model.x_columns),
                "y_column": model.y_column,
                "group_column": model.group_column,
                "group_values": list(model.group_values),
                "config": model.config,
            },
            "state": meta,
            "segments": spec,
            "data_bytes": cursor,
        }
        meta_blob = pickle.dumps(rec_meta, protocol=pickle.HIGHEST_PROTOCOL)
        prefix = (
            pack_header(RECORD_MAGIC, MAPPED_RECORD_VERSION)
            + _META_LEN.pack(len(meta_blob))
            + meta_blob
        )
        origin = _align(len(prefix))
        body = bytearray(origin + cursor)
        body[: len(prefix)] = prefix
        for start, arr in chunks:
            raw = arr.tobytes()
            body[origin + start: origin + start + len(raw)] = raw
        return bytes(body), len(meta_blob), cursor, zlib.crc32(meta_blob)

    def _read_manifest(self) -> dict[ModelKey, StoreRecord]:
        manifest_path = self.path / _MANIFEST_NAME
        if not manifest_path.exists():
            raise CatalogError(
                f"{self.path} is not a model store (no {_MANIFEST_NAME} file)"
            )
        body = split_header(
            manifest_path.read_bytes(),
            MANIFEST_MAGIC,
            STORE_FORMAT_VERSION,
            f"store manifest {manifest_path}",
        )
        try:
            manifest = pickle.loads(body)
        except Exception as exc:
            raise CatalogError(
                f"store manifest {manifest_path} is corrupt: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CatalogError(
                f"store manifest {manifest_path} holds a "
                f"{type(manifest).__name__}, expected a record mapping"
            )
        return manifest

    # -- catalog-compatible read API ---------------------------------------

    @staticmethod
    def _record_charge(record: StoreRecord) -> int:
        """A record's LRU heap charge.

        Pickle records put their whole payload on the heap; mapped
        records only their metadata blob — the segment pages are
        file-backed and shared, so charging them against the heap
        budget would double-count memory the OS can reclaim at will.
        """
        if getattr(record, "fmt", "pickle") == "mmap":
            return record.meta_nbytes
        return record.nbytes

    def get(self, key: ModelKey) -> object:
        """The model for ``key``, loading its record on first touch.

        The disk read + unpickle happens *outside* the store lock, so a
        miss on one model never blocks hits (or other misses) on the
        rest of the warehouse.  Two threads missing on the same key
        both load; the first to re-acquire the lock wins and the
        duplicate is discarded.
        """
        with self._lock:
            if key in self._resident:
                self._resident.move_to_end(key)
                self._hits += 1
                return self._resident[key]
            quarantined = self._quarantined.get(key)
            if quarantined is not None:
                raise CorruptRecordError(quarantined)
            try:
                record = self._records[key]
            except KeyError:
                raise ModelNotFoundError(
                    f"no model registered for {key}"
                ) from None
            self._misses += 1
        model = self._load_record(key, record)
        with self._lock:
            self._loads += 1
            if key in self._resident:  # racing loader beat us to it
                self._resident.move_to_end(key)
                return self._resident[key]
            self._resident[key] = model
            self._resident_bytes += self._record_charge(record)
            self._evict_over_budget(protect=key)
            return model

    def _load_record(self, key: ModelKey, record: StoreRecord) -> object:
        record_path = self.path / _RECORDS_DIR / record.filename
        if not record_path.exists():
            raise CatalogError(
                f"store record {record_path} for {key} is missing"
            )
        if getattr(record, "fmt", "pickle") == "mmap":
            return self._load_mapped_record(key, record, record_path)
        data = self._read_with_retry(record_path)
        try:
            body = split_header(
                data,
                RECORD_MAGIC,
                STORE_FORMAT_VERSION,
                f"store record {record_path}",
            )
            crc32 = getattr(record, "crc32", None)
            if crc32 is not None and zlib.crc32(body) != crc32:
                raise CatalogError(
                    f"store record {record_path} for {key} fails its CRC "
                    "check (payload bytes differ from what was written)"
                )
            model = pickle.loads(body)
        except CatalogError as exc:
            raise self._quarantine(key, record, record_path, exc) from exc
        except Exception as exc:
            reason = CatalogError(
                f"store record {record_path} for {key} is corrupt: {exc}"
            )
            raise self._quarantine(key, record, record_path, reason) from exc
        return model

    def _load_mapped_record(
        self, key: ModelKey, record: StoreRecord, record_path: Path
    ) -> object:
        """Integrity-check a mapped record's prefix, then mmap it.

        Only the header + metadata blob is read (through the retry /
        fault-injection seam, so transient-error and corruption
        semantics match pickle records); the segment region is mapped
        lazily.
        """
        prefix_len = _HEADER_LEN + _META_LEN.size + record.meta_nbytes
        data = self._read_with_retry(record_path, nbytes=prefix_len)
        try:
            _meta_len, meta_blob = _parse_record_prefix(data, record_path)
            crc32 = getattr(record, "crc32", None)
            if crc32 is not None and zlib.crc32(meta_blob) != crc32:
                raise CatalogError(
                    f"store record {record_path} for {key} fails its CRC "
                    "check (metadata bytes differ from what was written)"
                )
            model = load_mapped_model(record_path)
        except CatalogError as exc:
            raise self._quarantine(key, record, record_path, exc) from exc
        except Exception as exc:
            reason = CatalogError(
                f"store record {record_path} for {key} is corrupt: {exc}"
            )
            raise self._quarantine(key, record, record_path, reason) from exc
        return model

    def _read_with_retry(self, record_path: Path, nbytes: int | None = None) -> bytes:
        """Read record bytes (all, or the first ``nbytes``), retrying
        transient ``OSError`` with jittered exponential backoff (fault
        hooks fire per attempt)."""
        attempts = self.retries + 1
        registry = get_registry()
        for attempt in range(attempts):
            try:
                with _span(
                    "store.load" if attempt == 0
                    else f"store.load.retry{attempt}"
                ):
                    plan = self._faults.plan(STORE_LOAD)
                    if plan.sleep_s:
                        time.sleep(plan.sleep_s)
                    plan.raise_if_error()
                    if nbytes is None:
                        data = record_path.read_bytes()
                    else:
                        with open(record_path, "rb") as fh:
                            data = fh.read(nbytes)
                    if plan.corrupt:
                        data = FaultInjector.corrupt_bytes(data)
                if registry.enabled:
                    registry.counter("repro_store_load_attempts_total").inc()
                return data
            except OSError as exc:
                if registry.enabled:
                    registry.counter("repro_store_load_attempts_total").inc()
                if attempt + 1 >= attempts:
                    if registry.enabled:
                        registry.counter(
                            "repro_store_load_failures_total"
                        ).inc()
                    raise CatalogError(
                        f"store record {record_path} failed to read after "
                        f"{attempts} attempt(s): {exc}"
                    ) from exc
                backoff_s = (
                    self.retry_backoff_ms
                    / 1000.0
                    * (2.0**attempt)
                    * (0.5 + self._jitter.random())
                )
                with self._lock:
                    self._retries_used += 1
                if registry.enabled:
                    registry.counter("repro_store_retries_total").inc()
                if backoff_s > 0.0:
                    with _span("store.retry_backoff"):
                        time.sleep(backoff_s)
        raise AssertionError("unreachable")  # pragma: no cover

    def _quarantine(
        self,
        key: ModelKey,
        record: StoreRecord,
        record_path: Path,
        reason: CatalogError,
    ) -> CorruptRecordError:
        """Move a bad record to the sidecar dir and mark the key.

        Returns (does not raise) the error for the caller to raise with
        proper chaining.  Later touches of the key fail fast from the
        in-memory quarantine set instead of re-reading poisoned bytes —
        one bad record must not turn every subsequent hit into a fresh
        disk read + unpickle attempt.  (`os.replace` renames: a mapping
        some evaluator already holds on the file keeps working — pages
        belong to the inode, not the name.)
        """
        quarantine_dir = self.path / _QUARANTINE_DIR
        sidecar = quarantine_dir / record.filename
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(record_path, sidecar)
            moved = f"; record moved to {sidecar}"
        except OSError:
            # The record may be gone or the dir unwritable mid-fault;
            # the in-memory marker alone still prevents poisoning.
            moved = ""
        message = f"{reason} (quarantined{moved})"
        with self._lock:
            self._quarantined.setdefault(key, message)
        return CorruptRecordError(message)

    def _evict_over_budget(self, protect: ModelKey) -> None:
        """Drop least-recently-touched models until under budget.

        The just-touched key is never evicted, even when a single model
        exceeds the whole budget — the caller holds a reference anyway,
        so evicting it would save nothing.  Evicting a mapped model
        drops its mapping: the views go away with the evaluator and the
        OS reclaims the pages.
        """
        if self.cache_bytes <= 0:
            return
        while self._resident_bytes > self.cache_bytes and len(self._resident) > 1:
            oldest = next(iter(self._resident))
            if oldest == protect:
                break
            self._resident.pop(oldest)
            self._resident_bytes -= self._record_charge(self._records[oldest])
            self._evictions += 1

    def resolve(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> ModelKey:
        """The stored key answering a query — resolved against the
        manifest alone, without loading any model."""
        return resolve_model_key(self._records, table, x_columns, y_column, group_by)

    def find(
        self,
        table: str,
        x_columns,
        y_column: str | None,
        group_by: str | None = None,
    ) -> object:
        """Resolve and (lazily) load the model answering a query."""
        return self.get(self.resolve(table, x_columns, y_column, group_by))

    @property
    def version(self) -> int:
        """Bumped by every :meth:`write_refresh` on this handle.

        A handle that never refreshes stays at 0 (its manifest is read
        once and immutable, so memoised answers never go stale); after
        a refresh, serving layers compare versions between batches and
        use :meth:`changed_keys_since` to invalidate exactly the
        republished keys' memoised answers.
        """
        return self._version

    def changed_keys_since(self, version: int) -> set[ModelKey] | None:
        """Keys republished after ``version`` was current.

        Mirrors :meth:`ModelCatalog.changed_keys_since`: returns the
        (possibly empty) set of refreshed keys, or None when the
        change-log no longer reaches back that far — callers must then
        treat every memoised answer as suspect.
        """
        with self._lock:
            if version >= self._version:
                return set()
            if self._version - version > len(self._changelog):
                return None  # log truncated below the reader's horizon
            return {key for v, key in self._changelog if v > version}

    def keys(self) -> list[ModelKey]:
        return list(self._records)

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> list[dict]:
        """One description dict per stored model (manifest only)."""
        rows = []
        with self._lock:
            for key, record in self._records.items():
                rows.append(
                    {
                        "table": key.table,
                        "x_columns": key.x_columns,
                        "y_column": key.y_column,
                        "group_by": key.group_by,
                        "type": record.model_type,
                        "format": getattr(record, "fmt", "pickle"),
                        "record_bytes": record.nbytes,
                        "mapped_bytes": getattr(record, "mapped_nbytes", 0),
                        "resident": key in self._resident,
                    }
                )
        return rows

    def record_layout(self, key: ModelKey) -> dict:
        """Per-record storage layout (for ``store-info`` tooling).

        For mapped records this parses the on-disk segment table and
        lists every segment's dtype/shape/offset/bytes; for pickle
        records it reports the opaque payload.  Reads only the record
        prefix — never the segment region, never the model.
        """
        with self._lock:
            record = self._records.get(key)
        if record is None:
            raise ModelNotFoundError(f"no model registered for {key}")
        fmt = getattr(record, "fmt", "pickle")
        info = {
            "format": fmt,
            "filename": record.filename,
            "model_type": record.model_type,
            "record_bytes": record.nbytes,
            "heap_bytes": self._record_charge(record),
            "mapped_bytes": getattr(record, "mapped_nbytes", 0),
        }
        if fmt != "mmap":
            return info
        record_path = self.path / _RECORDS_DIR / record.filename
        prefix_len = _HEADER_LEN + _META_LEN.size + record.meta_nbytes
        with open(record_path, "rb") as fh:
            data = fh.read(prefix_len)
        _meta_len, meta_blob = _parse_record_prefix(data, record_path)
        rec_meta = pickle.loads(meta_blob)
        info["segments"] = [
            {
                "name": name,
                "dtype": dtype_str,
                "shape": list(shape),
                "offset": offset,
                "nbytes": nbytes,
            }
            for name, (dtype_str, shape, offset, nbytes) in sorted(
                rec_meta["segments"].items(), key=lambda kv: kv[1][2]
            )
        ]
        return info

    def total_size_bytes(self) -> int:
        """Summed on-disk record payload sizes (space-overhead metric)."""
        return sum(record.nbytes for record in self._records.values())

    # -- residency management ----------------------------------------------

    def loaded_keys(self) -> list[ModelKey]:
        """Keys currently resident, least-recently-touched first."""
        with self._lock:
            return list(self._resident)

    def resident_bytes(self) -> int:
        """Summed heap charges of resident models (the LRU's measure).

        Mapped records contribute only their metadata blobs; their
        segment bytes are file-backed — see :meth:`stats`'s
        ``mapped_bytes`` for those.
        """
        with self._lock:
            return self._resident_bytes

    def evict_all(self) -> None:
        """Drop every resident model; the next touch reloads from disk.

        Mapped models drop their mappings with them (once callers
        release their own references) — the pages go back to the OS,
        the files stay until a later :meth:`write` prunes their
        generation.
        """
        with self._lock:
            self._evictions += len(self._resident)
            self._resident.clear()
            self._resident_bytes = 0

    def quarantined_keys(self) -> list[ModelKey]:
        """Keys whose records failed integrity checks this session."""
        with self._lock:
            return list(self._quarantined)

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt record files are moved on detection."""
        return self.path / _QUARANTINE_DIR

    def stats(self) -> dict:
        """Hit/miss/load/eviction counters and residency occupancy.

        ``resident_bytes`` (== ``heap_bytes``) is what the LRU budget
        meters: unpickled payloads plus mapped records' metadata.
        ``mapped_bytes`` is the summed segment-region size of resident
        mapped records — file-backed, OS-reclaimable, shared across
        forked workers, and therefore *not* charged against the budget.
        """
        with self._lock:
            mapped_bytes = 0
            mapped_resident = 0
            for key in self._resident:
                record = self._records.get(key)
                if record is not None and getattr(record, "fmt", "pickle") == "mmap":
                    mapped_bytes += record.mapped_nbytes
                    mapped_resident += 1
            return {
                "models": len(self._records),
                "resident": len(self._resident),
                "resident_bytes": self._resident_bytes,
                "heap_bytes": self._resident_bytes,
                "mapped_bytes": mapped_bytes,
                "mapped_resident": mapped_resident,
                "budget_bytes": self.cache_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "loads": self._loads,
                "evictions": self._evictions,
                "retries": self._retries_used,
                "quarantined": len(self._quarantined),
                # Normalized cache-schema aliases (shared with the
                # answer/plan caches): occupancy and byte footprint.
                "entries": len(self._records),
                "bytes": self._resident_bytes,
            }

    def publish_metrics(self, registry) -> None:
        """Pull collector: copy :meth:`stats` into ``repro_store_*``.

        Registered in ``__init__`` via ``registry.collect`` (weakly —
        a dropped store detaches itself); runs at snapshot/exposition
        time, so the load path never dual-writes occupancy numbers.
        """
        for key, value in self.stats().items():
            if key in ("entries", "bytes"):
                continue  # aliases of models / resident_bytes
            registry.gauge(f"repro_store_{key}").set(float(value))

    def __repr__(self) -> str:
        return (
            f"ModelStore(path={str(self.path)!r}, models={len(self._records)}, "
            f"resident={len(self._resident)}, budget={self.cache_bytes})"
        )
