"""Concurrent query-serving subsystem.

Layers a serving loop over the :class:`~repro.core.engine.DBEst`
engine, exploiting sharing *across* queries the way the batched engine
exploits sharing across groups:

* :class:`ModelStore` — versioned on-disk model store: per-model
  records behind a manifest, lazy loading on first touch, LRU eviction
  under a byte budget (``DBEstConfig.serve_cache_bytes``).  With
  ``store_format="mmap"`` group-by sets persist their stacked CSR
  arrays as aligned memory-mappable segments: loads become an mmap +
  header check (:class:`MappedGroupByModelSet`) and forked worker
  pools share the pages instead of receiving pickled arrays.
* :class:`PlanCache` — normalised-template plan cache: parse each query
  shape once, bind literals on later sightings.
* :class:`AnswerCache` — bounded memoisation of
  ``(resolved ModelKey, aggregate, bounds)`` answers.
* :class:`QueryServer` — thread-safe worker pool that coalesces queued
  lookalike queries into shared engine passes and resolves per-caller
  futures, with deadlines, admission control, per-model circuit
  breakers, and degrade-to-AQP fault tolerance.
* :class:`FaultInjector` — deterministic, seedable fault injection at
  the store/server seams (:data:`NO_FAULTS` is the no-op default).
"""

from repro.serve.answer_cache import AnswerCache, answer_key
from repro.serve.faults import (
    NO_FAULTS,
    SERVER_DEQUEUE,
    SERVER_WORKER,
    STORE_LOAD,
    FaultInjector,
    FaultPlan,
    WorkerKilled,
)
from repro.serve.plan_cache import PlanCache
from repro.serve.server import QueryServer
from repro.serve.store import (
    MappedGroupByModelSet,
    ModelStore,
    StoreRecord,
    load_mapped_model,
)

__all__ = [
    "NO_FAULTS",
    "SERVER_DEQUEUE",
    "SERVER_WORKER",
    "STORE_LOAD",
    "AnswerCache",
    "FaultInjector",
    "FaultPlan",
    "MappedGroupByModelSet",
    "ModelStore",
    "PlanCache",
    "QueryServer",
    "StoreRecord",
    "WorkerKilled",
    "answer_key",
    "load_mapped_model",
]
