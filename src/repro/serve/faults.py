"""Deterministic fault injection at the serving layer's seams.

Fault tolerance claims are only as good as the faults they were tested
against, and real stores rarely misbehave on demand.  This module puts
*seeded, reproducible* misbehaviour behind no-op hooks at the seams the
serving stack already crosses:

* ``store.load``   — a model-store record read (latency spike,
  transient ``OSError``, byte corruption);
* ``server.dequeue`` — a worker picking up a batch (latency: a slow or
  stalled worker);
* ``server.worker``  — the worker loop itself (death: the thread
  exits, the server must respawn and no future may hang).

The production objects (:class:`~repro.serve.store.ModelStore`,
:class:`~repro.serve.server.QueryServer`) default to the shared
:data:`NO_FAULTS` injector whose :meth:`~FaultInjector.plan` returns a
singleton empty plan — the hooks cost one attribute lookup and one
branch when no harness is attached.

Rules are registered per site with a firing probability, an optional
bounded fire count, and any combination of effects::

    faults = FaultInjector(seed=7)
    faults.inject("store.load", probability=0.10, latency_s=0.005)
    faults.inject("store.load", probability=0.01, corrupt=True)
    faults.inject("store.load", error=OSError("disk glitch"), times=2)
    faults.inject("server.worker", kill_worker=True, times=1)

Draws come from one seeded RNG under a mutex, so a given seed and call
sequence reproduces the exact same fault schedule — tests assert on
specific behaviours, not on luck.  Per-site fire counters let tests and
the chaos bench report how much abuse a run actually absorbed.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.obs import get_registry

#: Seam names used by the built-in hooks (sites are free-form strings;
#: these constants just keep tests and production code in sync).
STORE_LOAD = "store.load"
SERVER_DEQUEUE = "server.dequeue"
SERVER_WORKER = "server.worker"


class WorkerKilled(Exception):
    """Raised inside a worker thread to simulate its death.

    The query server catches it at the top of the worker loop (never
    while a batch's futures are held), records the death, and respawns
    a replacement thread.
    """


@dataclass(frozen=True)
class FaultPlan:
    """What one seam crossing should suffer.  Empty for the no-op path."""

    sleep_s: float = 0.0
    error: BaseException | None = None
    corrupt: bool = False
    kill_worker: bool = False

    def raise_if_error(self) -> None:
        if self.error is not None:
            raise self.error


_EMPTY_PLAN = FaultPlan()


@dataclass
class _Rule:
    site: str
    probability: float
    latency_s: float
    error: BaseException | type[BaseException] | None
    corrupt: bool
    kill_worker: bool
    remaining: int | None  # None = unlimited
    fired: int = field(default=0)


class FaultInjector:
    """Seedable, thread-safe fault schedule over named seams."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._mutex = threading.Lock()
        self._rules: list[_Rule] = []
        self._fired: dict[str, int] = {}

    def inject(
        self,
        site: str,
        probability: float = 1.0,
        latency_s: float = 0.0,
        error: BaseException | type[BaseException] | None = None,
        corrupt: bool = False,
        kill_worker: bool = False,
        times: int | None = None,
    ) -> "FaultInjector":
        """Register one fault rule; returns self for chaining.

        ``times`` bounds how often the rule may fire (None = unlimited);
        ``error`` may be an exception instance (re-raised each fire) or
        a class (instantiated fresh each fire).
        """
        if not 0.0 <= probability <= 1.0:
            raise InvalidParameterError(
                f"probability must be in [0, 1], got {probability}"
            )
        if latency_s < 0.0:
            raise InvalidParameterError(
                f"latency_s must be >= 0, got {latency_s}"
            )
        if times is not None and times < 1:
            raise InvalidParameterError(
                f"times must be >= 1 (or None for unlimited), got {times}"
            )
        if (
            latency_s == 0.0
            and error is None
            and not corrupt
            and not kill_worker
        ):
            raise InvalidParameterError(
                "a fault rule needs at least one effect "
                "(latency_s, error, corrupt, or kill_worker)"
            )
        with self._mutex:
            self._rules.append(
                _Rule(
                    site=site,
                    probability=probability,
                    latency_s=latency_s,
                    error=error,
                    corrupt=corrupt,
                    kill_worker=kill_worker,
                    remaining=times,
                )
            )
        return self

    def plan(self, site: str) -> FaultPlan:
        """The faults this seam crossing suffers (the hot-path hook).

        Every registered rule for ``site`` draws independently; effects
        of all firing rules merge into one plan (the first firing error
        wins).  Exhausted rules (``times`` reached) never fire again.
        """
        with self._mutex:
            sleep_s = 0.0
            error: BaseException | None = None
            corrupt = False
            kill_worker = False
            fired = False
            for rule in self._rules:
                if rule.site != site:
                    continue
                if rule.remaining is not None and rule.remaining <= 0:
                    continue
                if rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                if rule.remaining is not None:
                    rule.remaining -= 1
                rule.fired += 1
                fired = True
                sleep_s += rule.latency_s
                if error is None and rule.error is not None:
                    error = (
                        rule.error()
                        if isinstance(rule.error, type)
                        else rule.error
                    )
                corrupt = corrupt or rule.corrupt
                kill_worker = kill_worker or rule.kill_worker
            if not fired:
                return _EMPTY_PLAN
            self._fired[site] = self._fired.get(site, 0) + 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_faults_fired_total", {"site": site}
            ).inc()
        return FaultPlan(
            sleep_s=sleep_s,
            error=error,
            corrupt=corrupt,
            kill_worker=kill_worker,
        )

    @staticmethod
    def corrupt_bytes(data: bytes) -> bytes:
        """Flip one byte mid-payload — past the magic header, so the
        damage is caught by CRC/unpickle checks, not the header check."""
        if not data:
            return data
        index = len(data) // 2
        return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]

    def fired(self, site: str | None = None) -> int:
        """Seam crossings that suffered at least one fault (all sites
        summed when ``site`` is None)."""
        with self._mutex:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    def stats(self) -> dict:
        with self._mutex:
            return {
                "rules": len(self._rules),
                "fired": dict(self._fired),
            }

    def reset(self) -> None:
        """Drop all rules and counters (the RNG keeps its stream)."""
        with self._mutex:
            self._rules.clear()
            self._fired.clear()


class _NoFaults(FaultInjector):
    """Shared no-op injector; refuses rule registration."""

    def inject(self, *args, **kwargs):  # pragma: no cover - guard rail
        raise InvalidParameterError(
            "NO_FAULTS is the shared no-op injector; create a "
            "FaultInjector() to register fault rules"
        )

    def plan(self, site: str) -> FaultPlan:
        return _EMPTY_PLAN


#: Default injector: every seam crossing gets the shared empty plan.
NO_FAULTS = _NoFaults()
