"""Thread-safe query server with micro-batched, coalesced execution.

``DBEst.execute`` serves one blocking query at a time.  Under real
traffic — many dashboard users firing near-identical queries — that
wastes the engine's own sharing machinery: every query re-parses its
SQL, re-resolves its model, and re-runs a full batched pass even when
an identical query sits right behind it in line.  :class:`QueryServer`
layers the missing serving loop on top of an engine:

* **Plan cache** — queries parse through a normalised-template cache
  (:class:`~repro.serve.plan_cache.PlanCache`), so repeated shapes skip
  the recursive-descent parser.
* **Coalescing** — queued requests that hit the same model set with the
  identical bounds template (same resolved table, merged ranges,
  equality predicates, and GROUP BY) are drained *together* by one
  worker: each distinct aggregate across the batch is computed exactly
  once and fanned out to every caller's future.  Distinct aggregates of
  one batch run back-to-back on the same evaluator, sharing its
  memoised pdf grid (one exp pass serves SUM, AVG and VARIANCE).
* **Answer cache** — computed answers memoise by
  ``(resolved ModelKey, aggregate, bounds)``
  (:class:`~repro.serve.answer_cache.AnswerCache`); an identical query
  arriving after its twin completed never reaches the engine at all.
* **Worker pool** — ``n_workers`` threads drain the queue; per-resolved-
  model locks serialise evaluation on any single model set (its lazily
  built evaluator and grid cache are not safe under concurrent
  mutation) while different model sets evaluate genuinely in parallel.

Usage::

    server = QueryServer(engine, n_workers=4)
    futures = [server.submit(sql) for sql in workload]
    answers = [future.result() for future in futures]
    server.close()          # or: with QueryServer(engine) as server: ...

``submit`` raises parse/validation errors synchronously (the caller's
thread parses via the plan cache); execution-time errors surface from
``Future.result()`` exactly as ``DBEst.execute`` would raise them.
Queries no model can answer fall back to ``engine.execute`` — and from
there to the engine's configured fallback engine — uncoalesced.

Answer parity: a served answer is the same ``answer_one`` evaluation a
sequential ``engine.execute`` performs (coalescing only dedupes and
reorders calls), so results agree to the last bit modulo the engine's
own documented batched/scalar tolerance.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import Future

from repro.core.catalog import ModelKey
from repro.core.engine import DBEst
from repro.core.result import QueryResult
from repro.errors import QueryExecutionError, ReproError
from repro.serve.answer_cache import AnswerCache, answer_key
from repro.serve.plan_cache import PlanCache
from repro.serve.store import ModelStore
from repro.sql.ast import AggregateCall, Query, merged_ranges
from repro.sql.validator import validate_query


class _Request:
    """One submitted query waiting on its future."""

    __slots__ = ("sql", "query", "table", "ranges", "future")

    def __init__(
        self,
        sql: str,
        query: Query,
        table: str,
        ranges: dict[str, tuple[float, float]],
        future: Future,
    ) -> None:
        self.sql = sql
        self.query = query
        self.table = table
        self.ranges = ranges
        self.future = future


class QueryServer:
    """Serve queries from a :class:`~repro.core.engine.DBEst` engine."""

    def __init__(
        self,
        engine: DBEst,
        n_workers: int = 4,
        plan_cache_size: int = 256,
        answer_cache_size: int = 4096,
        coalesce: bool = True,
    ) -> None:
        if n_workers < 1:
            raise QueryExecutionError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.engine = engine
        self.coalesce = coalesce
        self.plan_cache = PlanCache(max_plans=plan_cache_size)
        self.answer_cache = AnswerCache(max_entries=answer_cache_size)
        self._cond = threading.Condition()
        self._pending: OrderedDict[tuple, list[_Request]] = OrderedDict()
        self._closed = False
        self._unique = itertools.count()
        # Per-resolved-model locks: one model set's lazily built
        # evaluator and pdf-grid cache must not be mutated from two
        # threads; distinct model sets evaluate in parallel.
        self._model_locks: dict[ModelKey, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._fallback_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._catalog_version = getattr(engine.catalog, "version", 0)
        self._queries = 0
        self._batches = 0
        self._coalesced = 0
        self._engine_calls = 0
        self._fallbacks = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ---------------------------------------------------------

    def submit(self, sql: str | Query) -> Future:
        """Queue one query; returns a future resolving to a
        :class:`~repro.core.result.QueryResult`.

        Parse and validation errors raise here, synchronously.
        """
        if isinstance(sql, str):
            query = self.plan_cache.parse(sql)
            text = sql
        else:
            query = sql
            validate_query(query)
            text = query.to_sql()
        table = DBEst._resolve_table_name(query)
        ranges = merged_ranges(query.ranges)
        if self.coalesce:
            key = (
                table,
                query.group_by,
                tuple(sorted(ranges.items())),
                tuple((eq.column, eq.value) for eq in query.equalities),
            )
        else:
            key = (next(self._unique),)
        future: Future = Future()
        request = _Request(text, query, table, ranges, future)
        with self._cond:
            if self._closed:
                raise QueryExecutionError("query server is closed")
            self._pending.setdefault(key, []).append(request)
            self._cond.notify()
        with self._stats_lock:
            self._queries += 1
        return future

    def execute(self, sql: str | Query) -> QueryResult:
        """Submit and block for the answer (sequential convenience)."""
        return self.submit(sql).result()

    def run(self, sqls: Sequence[str | Query]) -> list[QueryResult]:
        """Submit a whole workload up front, then gather in order.

        Queueing everything before waiting is what lets concurrent
        lookalike queries coalesce into shared engine passes.
        """
        futures = [self.submit(sql) for sql in sqls]
        return [future.result() for future in futures]

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:  # closed and drained
                    return
                _key, requests = self._pending.popitem(last=False)
            try:
                self._serve_batch(requests)
            except BaseException as exc:  # keep the worker alive
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _serve_batch(self, requests: list[_Request]) -> None:
        """Answer one coalition batch: every distinct aggregate once."""
        start = time.perf_counter()
        # A catalog mutation (build_model re-registering a key) makes
        # memoised answers stale; the catalog version detects it.
        current_version = getattr(self.engine.catalog, "version", 0)
        if current_version != self._catalog_version:
            with self._stats_lock:
                if current_version != self._catalog_version:
                    self.answer_cache.clear()
                    self._catalog_version = current_version
        first = requests[0]
        equalities = tuple(
            (eq.column, eq.value) for eq in first.query.equalities
        )
        unique: dict[str, AggregateCall] = {}
        for request in requests:
            for aggregate in request.query.aggregates:
                unique.setdefault(str(aggregate), aggregate)
        outcomes: dict[str, tuple[bool, object, bool]] = {}
        for label, aggregate in unique.items():
            try:
                value, cached = self._answer_aggregate(
                    first.table, aggregate, first.ranges, first.query, equalities
                )
                outcomes[label] = (True, value, cached)
            except Exception as exc:
                # Any failure — ReproError or not (e.g. KeyError for an
                # unseen group value) — must reach the caller's future,
                # never kill the worker thread.
                outcomes[label] = (False, exc, False)
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._batches += 1
            self._coalesced += len(requests) - 1
        for request in requests:
            try:
                self._resolve_request(request, outcomes, elapsed)
            except BaseException as exc:  # never strand a caller
                if not request.future.done():
                    request.future.set_exception(exc)

    def _resolve_request(
        self,
        request: _Request,
        outcomes: dict[str, tuple[bool, object, bool]],
        elapsed: float,
    ) -> None:
        labels = [str(aggregate) for aggregate in request.query.aggregates]
        failed = [label for label in labels if not outcomes[label][0]]
        if failed:
            # Some aggregate could not be answered from models: route the
            # whole request through engine.execute, which applies the
            # fallback engine or raises exactly as sequential execution.
            with self._stats_lock:
                self._fallbacks += 1
            try:
                with self._fallback_locks(request):
                    result = self.engine.execute(request.query)
                result.sql = request.sql
                request.future.set_result(result)
            except Exception as exc:
                request.future.set_exception(exc)
            return
        # Coalesced batch-mates must not share mutable group-by dicts:
        # one caller mutating its QueryResult would corrupt the others'.
        values = {
            label: (
                dict(outcomes[label][1])
                if isinstance(outcomes[label][1], dict)
                else outcomes[label][1]
            )
            for label in labels
        }
        all_cached = all(outcomes[label][2] for label in labels)
        request.future.set_result(
            QueryResult(
                values=values,
                source="cache" if all_cached else "model",
                elapsed_seconds=elapsed,
                sql=request.sql,
            )
        )

    def _answer_aggregate(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
        equalities: tuple,
    ) -> tuple[object, bool]:
        """One aggregate's answer and whether it came from the cache."""
        model_key = self.engine.model_key_for(table, aggregate, ranges, query)
        if model_key is None:
            # Degenerate (contradictory ranges) or unanswerable from the
            # catalog: no stable model identity to cache or lock on.
            with self._fallback_lock:
                return (
                    self.engine.answer_one(table, aggregate, ranges, query),
                    False,
                )
        key = answer_key(model_key, aggregate, ranges, equalities)
        # Entries are tagged with the catalog version observed *before*
        # computing: if a model is swapped mid-computation, the tag is
        # already stale and the entry is never served (callers each
        # copy dicts per consumer, so copy=False skips a double copy).
        version = getattr(self.engine.catalog, "version", 0)
        value = self.answer_cache.get(key, version=version, copy=False)
        if not AnswerCache.missing(value):
            return value, True
        with self._model_lock(model_key):
            # A worker serving a lookalike batch may have filled the
            # entry while this one waited for the model lock.
            value = self.answer_cache.get(
                key, version=version, record=False, copy=False
            )
            if not AnswerCache.missing(value):
                return value, True
            value = self.engine.answer_one(table, aggregate, ranges, query)
            self.answer_cache.put(key, value, version=version)
        with self._stats_lock:
            self._engine_calls += 1
        return value, False

    def _fallback_locks(self, request: _Request) -> contextlib.ExitStack:
        """The fallback lock plus every model lock the request may touch.

        ``engine.execute`` on a partially-answerable request still
        evaluates its model-resolvable aggregates before failing over,
        so those models need the same serialisation the coalesced path
        gives them.  Locks acquire in a deterministic order (fallback
        first, then keys sorted) so two fallback requests cannot
        deadlock; compute workers only ever hold a single model lock.
        """
        keys = set()
        for aggregate in request.query.aggregates:
            model_key = self.engine.model_key_for(
                request.table, aggregate, request.ranges, request.query
            )
            if model_key is not None:
                keys.add(model_key)
        stack = contextlib.ExitStack()
        stack.enter_context(self._fallback_lock)
        for model_key in sorted(keys, key=repr):
            stack.enter_context(self._model_lock(model_key))
        return stack

    def _model_lock(self, model_key: ModelKey) -> threading.Lock:
        with self._locks_guard:
            lock = self._model_locks.get(model_key)
            if lock is None:
                lock = self._model_locks[model_key] = threading.Lock()
            return lock

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drain queued work, stop the workers, and join them.

        Safe to call twice; submissions after close raise.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Serving counters plus per-layer cache statistics."""
        with self._stats_lock:
            stats = {
                "queries": self._queries,
                "batches": self._batches,
                "coalesced": self._coalesced,
                "engine_calls": self._engine_calls,
                "fallbacks": self._fallbacks,
            }
        stats["plan_cache"] = self.plan_cache.stats()
        stats["answer_cache"] = self.answer_cache.stats()
        if isinstance(self.engine.catalog, ModelStore):
            stats["store"] = self.engine.catalog.stats()
        return stats
