"""Thread-safe query server with micro-batched, coalesced execution.

``DBEst.execute`` serves one blocking query at a time.  Under real
traffic — many dashboard users firing near-identical queries — that
wastes the engine's own sharing machinery: every query re-parses its
SQL, re-resolves its model, and re-runs a full batched pass even when
an identical query sits right behind it in line.  :class:`QueryServer`
layers the missing serving loop on top of an engine:

* **Plan cache** — queries parse through a normalised-template cache
  (:class:`~repro.serve.plan_cache.PlanCache`), so repeated shapes skip
  the recursive-descent parser.
* **Coalescing** — queued requests that hit the same model set with the
  identical bounds template (same resolved table, merged ranges,
  equality predicates, and GROUP BY) are drained *together* by one
  worker: each distinct aggregate across the batch is computed exactly
  once and fanned out to every caller's future.  Distinct aggregates of
  one batch run back-to-back on the same evaluator, sharing its
  memoised pdf grid (one exp pass serves SUM, AVG and VARIANCE).
* **Answer cache** — computed answers memoise by
  ``(resolved ModelKey, aggregate, bounds)``
  (:class:`~repro.serve.answer_cache.AnswerCache`); an identical query
  arriving after its twin completed never reaches the engine at all.
  A catalog version bump evicts only the entries whose resolved model
  changed (:meth:`~repro.core.catalog.ModelCatalog.changed_keys_since`),
  keeping every other memoised answer warm.
* **Single flight** — an identical aggregate already *in flight* is not
  recomputed: followers wait on the leader's future instead of queueing
  behind the model lock to redo the same work.
* **Worker pool** — ``n_workers`` threads drain the queue; per-resolved-
  model locks serialise evaluation on any single model set (its lazily
  built evaluator and grid cache are not safe under concurrent
  mutation) while different model sets evaluate genuinely in parallel.
* **Model store** — serving from a
  :class:`~repro.serve.store.ModelStore` catalog loads records lazily
  under an LRU byte budget; with mapped (``store_format="mmap"``)
  records a group-by set's stacked CSR arrays are memory-mapped
  zero-copy, so cold start is an mmap + header check and forked
  evaluation pools share pages instead of pickled arrays.

Fault tolerance (all knobs default from ``engine.config``):

* **Deadlines** — a per-request deadline (``deadline_ms``) is enforced
  when a worker dequeues the batch (expired requests fail fast with
  :class:`~repro.errors.DeadlineExceededError`, the engine is never
  touched) and *predictively* inside the batch: when the per-model EWMA
  latency says the model path cannot finish in the time left, the
  request degrades instead of missing its deadline.
* **Admission control** — ``max_queue`` bounds queued requests; the
  ``shed_policy`` decides who pays: ``"reject"`` refuses the new
  arrival, ``"drop-oldest"`` evicts the longest-queued request (both
  via :class:`~repro.errors.ServerOverloadedError`).
* **Circuit breaker** — ``breaker_threshold`` consecutive infrastructure
  failures (store/catalog errors, ``OSError``) on one resolved model
  key open its breaker: queries stop touching the failing model until
  ``breaker_reset_ms`` elapses, then one half-open probe decides
  whether to close it again.
* **Graceful degradation** — when the breaker is open or the deadline
  is near, ``degrade=True`` routes the aggregate through
  :meth:`~repro.core.engine.DBEst.answer_degraded` (exact scan or
  stratified/uniform AQP picked by the advisor); the result is tagged
  ``degraded`` with the reason.  With ``degrade=False`` callers see
  :class:`~repro.errors.CircuitOpenError` instead.
* **Fault injection** — a :class:`~repro.serve.faults.FaultInjector`
  passed as ``faults`` exercises the worker seams (dequeue latency,
  worker death with respawn); the default :data:`NO_FAULTS` makes the
  hooks no-ops.

Usage::

    server = QueryServer(engine, n_workers=4, deadline_ms=250.0)
    futures = [server.submit(sql) for sql in workload]
    answers = [future.result() for future in futures]
    server.close()          # or: with QueryServer(engine) as server: ...

``submit`` raises parse/validation errors synchronously (the caller's
thread parses via the plan cache); execution-time errors surface from
``Future.result()`` exactly as ``DBEst.execute`` would raise them.
Queries no model can answer fall back to ``engine.execute`` — and from
there to the engine's configured fallback engine — uncoalesced.

Answer parity: a served answer is the same ``answer_one`` evaluation a
sequential ``engine.execute`` performs (coalescing only dedupes and
reorders calls), so results agree to the last bit modulo the engine's
own documented batched/scalar tolerance.  Degraded answers are the
exception: they are approximate within the advisor's quoted error
bound, and always flagged as such on the result.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.core.catalog import ModelKey
from repro.core.engine import DBEst
from repro.core.result import QueryResult
from repro.errors import (
    CatalogError,
    CircuitOpenError,
    DeadlineExceededError,
    InvalidParameterError,
    QueryExecutionError,
    ServerOverloadedError,
)
from repro.obs import RATIO_BUCKETS, get_registry
from repro.obs.trace import Trace, activate, deactivate
from repro.obs.trace import span as _span
from repro.obs.trace import trace_buffer
from repro.serve.answer_cache import AnswerCache, answer_key
from repro.serve.faults import (
    NO_FAULTS,
    SERVER_DEQUEUE,
    SERVER_WORKER,
    FaultInjector,
)
from repro.serve.plan_cache import PlanCache
from repro.serve.store import ModelStore
from repro.sql.ast import AggregateCall, Query, merged_ranges
from repro.sql.validator import validate_query

#: Failures that mean the *infrastructure* under a model misbehaved
#: (store read failed, record corrupt, catalog inconsistent) — these
#: count against the model's circuit breaker and are eligible for
#: graceful degradation.  Anything else (e.g. a KeyError for an unseen
#: group value) is a property of the query, not the model path, and
#: keeps the legacy routing: fall back or surface to the caller.
_INFRA_ERRORS = (CatalogError, OSError)

_SHED_POLICIES = ("reject", "drop-oldest")

#: Errors produced by serving *policy* (deadline, breaker, shedding).
#: They must reach the caller as-is — retrying via ``engine.execute``
#: would defeat the very mechanism that raised them.
_POLICY_ERRORS = (CircuitOpenError, DeadlineExceededError, ServerOverloadedError)


class _Request:
    """One submitted query waiting on its future."""

    __slots__ = (
        "sql", "query", "table", "ranges", "future", "deadline",
        "deadline_ms", "trace",
    )

    def __init__(
        self,
        sql: str,
        query: Query,
        table: str,
        ranges: dict[str, tuple[float, float]],
        future: Future,
        deadline: float | None,
        deadline_ms: float | None,
        trace: Trace | None = None,
    ) -> None:
        self.sql = sql
        self.query = query
        self.table = table
        self.ranges = ranges
        self.future = future
        self.deadline = deadline  # absolute time.monotonic() cutoff
        self.deadline_ms = deadline_ms
        self.trace = trace  # per-query span record (None when tracing is off)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class _Breaker:
    """Per-model-key circuit breaker state (guarded by the server)."""

    __slots__ = ("failures", "open_since", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.open_since: float | None = None  # None = closed
        self.probing = False  # a half-open probe is in flight


class QueryServer:
    """Serve queries from a :class:`~repro.core.engine.DBEst` engine."""

    def __init__(
        self,
        engine: DBEst,
        n_workers: int = 4,
        plan_cache_size: int = 256,
        answer_cache_size: int = 4096,
        coalesce: bool = True,
        deadline_ms: float | None = None,
        max_queue: int | None = None,
        shed_policy: str | None = None,
        degrade: bool | None = None,
        breaker_threshold: int | None = None,
        breaker_reset_ms: float | None = None,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        """Fault-tolerance knobs default from ``engine.config``
        (``serve_deadline_ms``, ``serve_max_queue``, ``serve_shed_policy``,
        ``serve_degrade``, ``serve_breaker_threshold``,
        ``serve_breaker_reset_ms``).  ``deadline_ms``/``max_queue`` values
        of ``0`` disable the deadline / queue bound explicitly even when
        the config sets one.
        """
        if n_workers < 1:
            raise QueryExecutionError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        config = engine.config
        self.engine = engine
        self.coalesce = coalesce
        self.deadline_ms = (
            config.serve_deadline_ms if deadline_ms is None else deadline_ms
        )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            self.deadline_ms = None
        self.max_queue = (
            config.serve_max_queue if max_queue is None else max_queue
        )
        self.shed_policy = (
            config.serve_shed_policy if shed_policy is None else shed_policy
        )
        if self.shed_policy not in _SHED_POLICIES:
            raise InvalidParameterError(
                f"shed_policy must be one of {_SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        self.degrade = config.serve_degrade if degrade is None else degrade
        self.breaker_threshold = (
            config.serve_breaker_threshold
            if breaker_threshold is None
            else breaker_threshold
        )
        self.breaker_reset_ms = (
            config.serve_breaker_reset_ms
            if breaker_reset_ms is None
            else breaker_reset_ms
        )
        self.plan_cache = PlanCache(max_plans=plan_cache_size)
        self.answer_cache = AnswerCache(max_entries=answer_cache_size)
        self._faults = faults
        self._cond = threading.Condition()
        self._pending: OrderedDict[tuple, list[_Request]] = OrderedDict()
        self._queued = 0
        self._closed = False
        self._unique = itertools.count()
        # Per-resolved-model locks: one model set's lazily built
        # evaluator and pdf-grid cache must not be mutated from two
        # threads; distinct model sets evaluate in parallel.
        self._model_locks: dict[ModelKey, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._fallback_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._catalog_version = getattr(engine.catalog, "version", 0)
        # Identical aggregates already being computed: followers wait on
        # the leader's future instead of redoing the work.
        self._inflight: dict[tuple, Future] = {}
        self._inflight_guard = threading.Lock()
        self._breakers: dict[ModelKey, _Breaker] = {}
        self._breaker_guard = threading.Lock()
        self._breaker_opens = 0
        # EWMA of model-path latency per resolved key, for the
        # deadline-near degradation decision (guarded by _stats_lock).
        self._latency: dict[ModelKey, float] = {}
        self._queries = 0
        self._batches = 0
        self._coalesced = 0
        self._engine_calls = 0
        self._fallbacks = 0
        self._shed = 0
        self._deadline_missed = 0
        self._degraded = 0
        self._single_flight = 0
        self._worker_deaths = 0
        self._invalidated = 0
        self._worker_ids = itertools.count(n_workers)
        self._workers_guard = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        # Pull-style metrics: the active registry harvests stats() at
        # snapshot time (weakly referenced — a dropped server detaches
        # itself).  A no-op when metrics are disabled.
        get_registry().collect(self.publish_metrics)
        # Snapshot before starting: an injected worker death can respawn
        # a replacement (already started) into self._workers while this
        # loop is still running.
        for worker in tuple(self._workers):
            worker.start()

    # -- submission ---------------------------------------------------------

    def submit(self, sql: str | Query, deadline_ms: float | None = None) -> Future:
        """Queue one query; returns a future resolving to a
        :class:`~repro.core.result.QueryResult`.

        Parse and validation errors raise here, synchronously, as does
        :class:`~repro.errors.ServerOverloadedError` under the
        ``"reject"`` shed policy when the queue is full.  ``deadline_ms``
        overrides the server default for this request (``0`` disables).
        """
        if isinstance(sql, str):
            query = self.plan_cache.parse(sql)
            text = sql
        else:
            query = sql
            validate_query(query)
            text = query.to_sql()
        table = DBEst._resolve_table_name(query)
        ranges = merged_ranges(query.ranges)
        if self.coalesce:
            key = (
                table,
                query.group_by,
                tuple(sorted(ranges.items())),
                tuple((eq.column, eq.value) for eq in query.equalities),
            )
        else:
            key = (next(self._unique),)
        effective_ms = self.deadline_ms if deadline_ms is None else deadline_ms
        if effective_ms is not None and effective_ms <= 0:
            effective_ms = None
        deadline = (
            time.monotonic() + effective_ms / 1000.0
            if effective_ms is not None
            else None
        )
        future: Future = Future()
        buffer = trace_buffer()
        trace = Trace(text) if buffer is not None else None
        request = _Request(
            text, query, table, ranges, future, deadline, effective_ms,
            trace=trace,
        )
        shed_request = None
        rejected = False
        with self._cond:
            if self._closed:
                raise QueryExecutionError("query server is closed")
            if self.max_queue and self._queued >= self.max_queue:
                if self.shed_policy == "reject":
                    rejected = True
                else:
                    shed_request = self._pop_oldest_locked()
            if not rejected:
                self._pending.setdefault(key, []).append(request)
                self._queued += 1
                self._cond.notify()
        if rejected:
            with self._stats_lock:
                self._shed += 1
            raise ServerOverloadedError(
                f"admission queue is full ({self.max_queue} queued); "
                "shed policy 'reject' refuses new queries"
            )
        with self._stats_lock:
            self._queries += 1
        if shed_request is not None:
            with self._stats_lock:
                self._shed += 1
            if not shed_request.future.done():
                shed_request.future.set_exception(
                    ServerOverloadedError(
                        f"admission queue is full ({self.max_queue} queued); "
                        "shed policy 'drop-oldest' evicted this query to "
                        "admit a newer one"
                    )
                )
            self._finish_trace(shed_request, outcome="shed")
        return future

    def _pop_oldest_locked(self) -> _Request:
        """Evict the longest-queued request (caller holds ``_cond``)."""
        key, requests = next(iter(self._pending.items()))
        oldest = requests.pop(0)
        if not requests:
            del self._pending[key]
        self._queued -= 1
        return oldest

    def execute(
        self, sql: str | Query, deadline_ms: float | None = None
    ) -> QueryResult:
        """Submit and block for the answer (sequential convenience)."""
        return self.submit(sql, deadline_ms=deadline_ms).result()

    def run(self, sqls: Sequence[str | Query]) -> list[QueryResult]:
        """Submit a whole workload up front, then gather in order.

        Queueing everything before waiting is what lets concurrent
        lookalike queries coalesce into shared engine passes.
        """
        futures = [self.submit(sql) for sql in sqls]
        return [future.result() for future in futures]

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            # Fault seam: checked between batches, never while holding a
            # batch — a killed worker strands no futures.
            plan = self._faults.plan(SERVER_WORKER)
            if plan.sleep_s:
                time.sleep(plan.sleep_s)
            if plan.kill_worker:
                self._on_worker_death()
                return
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:  # closed and drained
                    return
                _key, requests = self._pending.popitem(last=False)
                self._queued -= len(requests)
            try:
                self._serve_batch(requests)
            except BaseException as exc:  # keep the worker alive
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _on_worker_death(self) -> None:
        """Record an injected worker death and respawn a replacement."""
        with self._stats_lock:
            self._worker_deaths += 1
        with self._cond:
            if self._closed and not self._pending:
                return  # nothing left to serve
        replacement = threading.Thread(
            target=self._worker_loop,
            name=f"repro-serve-{next(self._worker_ids)}",
            daemon=True,
        )
        with self._workers_guard:
            self._workers.append(replacement)
        replacement.start()

    def _serve_batch(self, requests: list[_Request]) -> None:
        """Answer one coalition batch: every distinct aggregate once."""
        start = time.perf_counter()
        plan = self._faults.plan(SERVER_DEQUEUE)
        if plan.sleep_s:  # injected slow worker
            time.sleep(plan.sleep_s)
        # A catalog mutation (build_model re-registering a key) makes
        # the affected memoised answers stale; sweep just those.
        self._sweep_stale_answers()
        now = time.monotonic()
        live = []
        expired = []
        for request in requests:
            (expired if request.expired(now) else live).append(request)
        for request in expired:
            if not request.future.done():
                request.future.set_exception(
                    DeadlineExceededError(
                        f"deadline of {request.deadline_ms:g} ms expired "
                        "before execution began"
                    )
                )
            self._finish_trace(request, outcome="deadline_missed")
        if expired:
            with self._stats_lock:
                self._deadline_missed += len(expired)
        if not live:
            return
        requests = live
        first = requests[0]
        deadlines = [r.deadline for r in requests if r.deadline is not None]
        batch_deadline = min(deadlines) if deadlines else None
        equalities = tuple(
            (eq.column, eq.value) for eq in first.query.equalities
        )
        unique: dict[str, AggregateCall] = {}
        for request in requests:
            for aggregate in request.query.aggregates:
                unique.setdefault(str(aggregate), aggregate)
        outcomes: dict[str, tuple[bool, object, bool, str | None]] = {}
        # Deep layers (store retry loop, batched evaluator) record spans
        # into the batch leader's trace via the thread-local hookup;
        # coalesced followers share the leader's computation, so their
        # traces carry the admission/serve envelope only.
        leader_trace = first.trace
        if leader_trace is not None:
            leader_trace._depth = 2  # children of the "serve" span
            activate(leader_trace)
        try:
            for label, aggregate in unique.items():
                try:
                    value, cached, degraded_reason = self._answer_aggregate(
                        first.table,
                        aggregate,
                        first.ranges,
                        first.query,
                        equalities,
                        batch_deadline,
                    )
                    outcomes[label] = (True, value, cached, degraded_reason)
                except Exception as exc:
                    # Any failure — ReproError or not (e.g. KeyError for
                    # an unseen group value) — must reach the caller's
                    # future, never kill the worker thread.
                    outcomes[label] = (False, exc, False, None)
        finally:
            if leader_trace is not None:
                deactivate()
                leader_trace._depth = 1
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._batches += 1
            self._coalesced += len(requests) - 1
        registry = get_registry()
        if registry.enabled:
            registry.histogram("repro_serve_batch_seconds").observe(elapsed)
            registry.counter("repro_serve_batch_requests_total").inc(
                len(requests)
            )
        for request in requests:
            try:
                self._resolve_request(request, outcomes, elapsed)
            except BaseException as exc:  # never strand a caller
                if not request.future.done():
                    request.future.set_exception(exc)
            self._finish_trace(request, batch_start=start)

    def _finish_trace(
        self,
        request: _Request,
        outcome: str | None = None,
        batch_start: float | None = None,
    ) -> None:
        """Close a request's trace and push it into the ring buffer.

        ``batch_start`` is the worker-side processing start: the trace
        gets an ``admission.wait`` span (submit to dequeue) and a
        ``serve`` span (dequeue to resolution) whose endpoints are
        shared with the root, so the top-level spans sum to the trace's
        wall time exactly.  Requests that never reached a worker (shed,
        deadline-expired) record only the wait.
        """
        trace = request.trace
        if trace is None:
            return
        end = time.perf_counter()
        wait_end = batch_start if batch_start is not None else end
        trace.add_span("admission.wait", trace.t0, wait_end, depth=1)
        if batch_start is not None:
            trace.add_span("serve", batch_start, end, depth=1)
        if outcome is None:
            future = request.future
            if future.done():
                error = future.exception()
                if error is not None:
                    outcome = f"error:{type(error).__name__}"
                else:
                    outcome = future.result().source
        trace.outcome = outcome
        trace.finish(end)
        registry = get_registry()
        if registry.enabled:
            registry.histogram("repro_serve_query_seconds").observe(
                trace.wall_s
            )
        buffer = trace_buffer()
        if buffer is not None:
            buffer.add(trace)

    def _sweep_stale_answers(self) -> None:
        """Evict answer-cache entries whose models changed.

        Uses the catalog's change-log for per-key eviction; a catalog
        without one (or one truncated below our horizon) forces a full
        clear.  Surviving entries are re-tagged to the new version so
        later lookups still hit.  A :class:`~repro.serve.ModelStore`
        speaks the same ``version`` / ``changed_keys_since`` protocol
        (bumped by ``write_refresh``), so a server fronting a store
        invalidates exactly the republished keys on streaming refresh —
        and because cache hits require the entry's version tag to match
        (see :mod:`repro.serve.answer_cache`), an answer computed
        against the superseded generation can never be served after the
        sweep, even if its ``put`` races the republish.
        """
        current = getattr(self.engine.catalog, "version", 0)
        if current == self._catalog_version:
            return
        with self._stats_lock:
            if current == self._catalog_version:
                return
            changed_since = getattr(
                self.engine.catalog, "changed_keys_since", None
            )
            changed = (
                changed_since(self._catalog_version)
                if changed_since is not None
                else None
            )
            if changed is None:
                self.answer_cache.clear()
            else:
                self._invalidated += self.answer_cache.invalidate(
                    changed, current
                )
            self._catalog_version = current

    def _resolve_request(
        self,
        request: _Request,
        outcomes: dict[str, tuple[bool, object, bool, str | None]],
        elapsed: float,
    ) -> None:
        labels = [str(aggregate) for aggregate in request.query.aggregates]
        failed = [label for label in labels if not outcomes[label][0]]
        if failed:
            # Serving-policy errors (deadline, breaker, shedding) reach
            # the caller as-is: a fallback retry through engine.execute
            # would defeat the mechanism that raised them.
            policy = next(
                (
                    outcomes[label][1]
                    for label in failed
                    if isinstance(outcomes[label][1], _POLICY_ERRORS)
                ),
                None,
            )
            if policy is not None:
                request.future.set_exception(policy)
                return
            # Some aggregate could not be answered from models: route the
            # whole request through engine.execute, which applies the
            # fallback engine or raises exactly as sequential execution.
            with self._stats_lock:
                self._fallbacks += 1
            trace = request.trace
            if trace is not None:
                fallback_start = time.perf_counter()
                trace._depth = 3  # children of the fallback span
                activate(trace)
            try:
                with self._fallback_locks(request):
                    result = self.engine.execute(request.query)
                result.sql = request.sql
                request.future.set_result(result)
            except Exception as exc:
                request.future.set_exception(exc)
            finally:
                if trace is not None:
                    deactivate()
                    trace._depth = 1
                    trace.add_span(
                        "fallback.execute",
                        fallback_start,
                        time.perf_counter(),
                        depth=2,
                    )
            return
        # Coalesced batch-mates must not share mutable group-by dicts:
        # one caller mutating its QueryResult would corrupt the others'.
        values = {
            label: (
                dict(outcomes[label][1])
                if isinstance(outcomes[label][1], dict)
                else outcomes[label][1]
            )
            for label in labels
        }
        all_cached = all(outcomes[label][2] for label in labels)
        reasons = [outcomes[label][3] for label in labels if outcomes[label][3]]
        degraded = bool(reasons)
        if degraded:
            source = "degraded"
        elif all_cached:
            source = "cache"
        else:
            source = "model"
        request.future.set_result(
            QueryResult(
                values=values,
                source=source,
                elapsed_seconds=elapsed,
                sql=request.sql,
                degraded=degraded,
                degraded_reason="; ".join(dict.fromkeys(reasons)),
            )
        )

    def _answer_aggregate(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
        equalities: tuple,
        deadline: float | None,
    ) -> tuple[object, bool, str | None]:
        """One aggregate's answer: ``(value, cached, degraded_reason)``."""
        model_key = self.engine.model_key_for(table, aggregate, ranges, query)
        if model_key is None:
            # Degenerate (contradictory ranges) or unanswerable from the
            # catalog: no stable model identity to cache or lock on.
            with self._fallback_lock:
                return (
                    self.engine.answer_one(table, aggregate, ranges, query),
                    False,
                    None,
                )
        key = answer_key(model_key, aggregate, ranges, equalities)
        # Entries are tagged with the catalog version observed *before*
        # computing: if a model is swapped mid-computation, the tag is
        # already stale and the entry is never served (callers each
        # copy dicts per consumer, so copy=False skips a double copy).
        version = getattr(self.engine.catalog, "version", 0)
        with _span("answer_cache.lookup"):
            value = self.answer_cache.get(key, version=version, copy=False)
        if not AnswerCache.missing(value):
            return value, True, None
        if not self._breaker_allows(model_key):
            return self._degrade(
                table,
                aggregate,
                ranges,
                query,
                reason=(
                    "circuit breaker open for model "
                    f"{model_key.table}/{','.join(model_key.x_columns)}"
                ),
                original=None,
            )
        if deadline is not None:
            remaining = deadline - time.monotonic()
            with self._stats_lock:
                estimate = self._latency.get(model_key)
            if estimate is not None and remaining < estimate:
                try:
                    return self._degrade(
                        table,
                        aggregate,
                        ranges,
                        query,
                        reason=(
                            f"deadline near ({remaining * 1e3:.1f} ms left < "
                            f"{estimate * 1e3:.1f} ms model-path estimate)"
                        ),
                        original=None,
                    )
                except Exception:
                    pass  # no degraded capacity; a late answer beats none
        return self._model_path(
            table, aggregate, ranges, query, model_key, key, version, deadline
        )

    def _model_path(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
        model_key: ModelKey,
        key: tuple,
        version: int,
        deadline: float | None,
    ) -> tuple[object, bool, str | None]:
        """Compute through the model, with single-flight deduplication."""
        with self._inflight_guard:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = Future()
                self._inflight[key] = flight
        if not leader:
            return self._follow_flight(
                flight, table, aggregate, ranges, query, deadline
            )
        try:
            with _span("model_lock.wait"):
                lock = self._model_lock(model_key)
                lock.acquire()
            try:
                # A worker serving a lookalike batch may have filled the
                # entry while this one waited for the model lock.
                with _span("answer_cache.lookup"):
                    value = self.answer_cache.get(
                        key, version=version, record=False, copy=False
                    )
                cached = not AnswerCache.missing(value)
                if not cached:
                    started = time.perf_counter()
                    with _span("evaluator.answer"):
                        value = self.engine.answer_one(
                            table, aggregate, ranges, query
                        )
                    self._note_latency(
                        model_key, time.perf_counter() - started
                    )
                    self.answer_cache.put(key, value, version=version)
            finally:
                lock.release()
        except BaseException as exc:
            with self._inflight_guard:
                self._inflight.pop(key, None)
            if not flight.done():
                flight.set_exception(exc)
            if isinstance(exc, _INFRA_ERRORS):
                self._breaker_record(model_key, ok=False)
                return self._degrade(
                    table,
                    aggregate,
                    ranges,
                    query,
                    reason=f"model path failed ({exc})",
                    original=exc,
                )
            raise
        with self._inflight_guard:
            self._inflight.pop(key, None)
        flight.set_result(value)
        self._breaker_record(model_key, ok=True)
        if not cached:
            with self._stats_lock:
                self._engine_calls += 1
        return value, cached, None

    def _follow_flight(
        self,
        flight: Future,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
        deadline: float | None,
    ) -> tuple[object, bool, str | None]:
        """Wait on an identical in-flight computation instead of redoing it."""
        with self._stats_lock:
            self._single_flight += 1
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        try:
            with _span("single_flight.wait"):
                value = flight.result(timeout=timeout)
        except _FutureTimeout:
            raise DeadlineExceededError(
                "deadline expired while waiting on an identical in-flight "
                "computation"
            ) from None
        except _INFRA_ERRORS as exc:
            # The leader already recorded the breaker failure; this
            # follower degrades independently (no double-counting).
            return self._degrade(
                table,
                aggregate,
                ranges,
                query,
                reason=f"in-flight model computation failed ({exc})",
                original=exc,
            )
        return value, False, None

    def _degrade(
        self,
        table: str,
        aggregate: AggregateCall,
        ranges: dict[str, tuple[float, float]],
        query: Query,
        reason: str,
        original: BaseException | None,
    ) -> tuple[object, bool, str | None]:
        """Serve one aggregate without the model path, or re-raise.

        ``original`` is the model-path failure that triggered this (None
        for pre-emptive degradation); it is re-raised when degradation
        is disabled or itself fails, so callers never see a degradation
        artefact masking the underlying fault.
        """
        if not self.degrade:
            if original is not None:
                raise original
            raise CircuitOpenError(
                f"{reason}; degraded answering is disabled (degrade=False)"
            )
        try:
            with _span("degrade.answer"):
                value, route = self.engine.answer_degraded(
                    table, aggregate, ranges, query
                )
        except Exception as degrade_exc:
            if original is not None:
                raise original from degrade_exc
            raise
        with self._stats_lock:
            self._degraded += 1
        registry = get_registry()
        if registry.enabled:
            # The accuracy contract of a degraded answer: how large an
            # error bound was quoted each time the advisor took over.
            registry.counter(
                "repro_serve_degraded_total", {"engine": route.engine}
            ).inc()
            registry.histogram(
                "repro_serve_degraded_error_bound",
                buckets=RATIO_BUCKETS,
            ).observe(float(route.error_bound or 0.0))
        detail = f"{reason}; served by {route.engine}"
        if route.error_bound:
            detail += f" (relative error bound ~{route.error_bound:.3f})"
        return value, False, detail

    # -- circuit breaker ----------------------------------------------------

    def _breaker_allows(self, model_key: ModelKey) -> bool:
        """Whether the model path may be attempted for this key.

        Closed breakers always allow.  An open breaker allows exactly
        one caller through after ``breaker_reset_ms`` — the half-open
        probe — whose outcome closes or re-opens it.
        """
        if self.breaker_threshold <= 0:
            return True  # breaker disabled
        with self._breaker_guard:
            breaker = self._breakers.get(model_key)
            if breaker is None or breaker.open_since is None:
                return True
            if breaker.probing:
                return False
            elapsed = time.monotonic() - breaker.open_since
            if elapsed >= self.breaker_reset_ms / 1000.0:
                breaker.probing = True  # this caller is the probe
                return True
            return False

    def _breaker_record(self, model_key: ModelKey, ok: bool) -> None:
        """Record a model-path outcome against the key's breaker."""
        if self.breaker_threshold <= 0:
            return
        with self._breaker_guard:
            breaker = self._breakers.get(model_key)
            if ok:
                if breaker is not None:
                    breaker.failures = 0
                    breaker.open_since = None
                    breaker.probing = False
                return
            if breaker is None:
                breaker = self._breakers[model_key] = _Breaker()
            breaker.failures += 1
            was_open = breaker.open_since is not None
            if breaker.probing or breaker.failures >= self.breaker_threshold:
                breaker.open_since = time.monotonic()
                breaker.probing = False
                if not was_open:
                    self._breaker_opens += 1
                    registry = get_registry()
                    if registry.enabled:
                        registry.counter(
                            "repro_serve_breaker_opens_total"
                        ).inc()

    def _note_latency(self, model_key: ModelKey, elapsed: float) -> None:
        """Fold one model-path latency into the key's EWMA."""
        with self._stats_lock:
            previous = self._latency.get(model_key)
            self._latency[model_key] = (
                elapsed if previous is None else 0.7 * previous + 0.3 * elapsed
            )

    def _fallback_locks(self, request: _Request) -> contextlib.ExitStack:
        """The fallback lock plus every model lock the request may touch.

        ``engine.execute`` on a partially-answerable request still
        evaluates its model-resolvable aggregates before failing over,
        so those models need the same serialisation the coalesced path
        gives them.  Locks acquire in a deterministic order (fallback
        first, then keys sorted) so two fallback requests cannot
        deadlock; compute workers only ever hold a single model lock.
        """
        keys = set()
        for aggregate in request.query.aggregates:
            model_key = self.engine.model_key_for(
                request.table, aggregate, request.ranges, request.query
            )
            if model_key is not None:
                keys.add(model_key)
        stack = contextlib.ExitStack()
        stack.enter_context(self._fallback_lock)
        for model_key in sorted(keys, key=repr):
            stack.enter_context(self._model_lock(model_key))
        return stack

    def _model_lock(self, model_key: ModelKey) -> threading.Lock:
        with self._locks_guard:
            lock = self._model_locks.get(model_key)
            if lock is None:
                lock = self._model_locks[model_key] = threading.Lock()
            return lock

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the workers and join them.

        ``drain=True`` (the default) serves every queued request first;
        ``drain=False`` fails queued-but-unstarted requests immediately
        with :class:`~repro.errors.QueryExecutionError` (in-flight
        batches still finish).  Safe to call twice; submissions after
        close raise.
        """
        dropped: list[_Request] = []
        with self._cond:
            self._closed = True
            if not drain:
                for requests in self._pending.values():
                    dropped.extend(requests)
                self._pending.clear()
                self._queued = 0
            self._cond.notify_all()
        for request in dropped:
            if not request.future.done():
                request.future.set_exception(
                    QueryExecutionError(
                        "query server closed with drain=False before this "
                        "query ran"
                    )
                )
        # Injected worker deaths may respawn replacements while we join;
        # snapshot until the list stops growing.
        joined = 0
        while True:
            with self._workers_guard:
                workers = list(self._workers)
            if joined >= len(workers):
                break
            for worker in workers[joined:]:
                worker.join()
            joined = len(workers)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Serving counters plus per-layer cache statistics."""
        with self._stats_lock:
            stats = {
                "queries": self._queries,
                "batches": self._batches,
                "coalesced": self._coalesced,
                "engine_calls": self._engine_calls,
                "fallbacks": self._fallbacks,
                "shed": self._shed,
                "deadline_missed": self._deadline_missed,
                "degraded": self._degraded,
                "single_flight": self._single_flight,
                "worker_deaths": self._worker_deaths,
                "invalidated": self._invalidated,
            }
        with self._cond:
            stats["queued"] = self._queued
        with self._breaker_guard:
            stats["breaker"] = {
                "threshold": self.breaker_threshold,
                "opens": self._breaker_opens,
                "open": sum(
                    1
                    for breaker in self._breakers.values()
                    if breaker.open_since is not None
                ),
            }
        stats["plan_cache"] = self.plan_cache.stats()
        stats["answer_cache"] = self.answer_cache.stats()
        if isinstance(self.engine.catalog, ModelStore):
            stats["store"] = self.engine.catalog.stats()
            stats["retried"] = stats["store"].get("retries", 0)
        if self._faults is not NO_FAULTS:
            stats["faults"] = self._faults.stats()
        return stats

    def publish_metrics(self, registry) -> None:
        """Copy the serving counters into ``registry`` as gauges.

        Registered as a pull collector (see :mod:`repro.obs`): runs at
        snapshot/exposition time, so the hot serving paths pay nothing
        for the retrofit of the pre-registry ``stats()`` counters.
        """
        stats = self.stats()
        for key in (
            "queries", "batches", "coalesced", "engine_calls", "fallbacks",
            "shed", "deadline_missed", "degraded", "single_flight",
            "worker_deaths", "invalidated", "queued",
        ):
            registry.gauge(f"repro_serve_{key}").set(stats[key])
        registry.gauge("repro_serve_breaker_opens").set(
            stats["breaker"]["opens"]
        )
        registry.gauge("repro_serve_breaker_open").set(
            stats["breaker"]["open"]
        )
        for layer in ("plan_cache", "answer_cache"):
            for key in ("entries", "max_entries", "hits", "misses",
                        "evictions"):
                registry.gauge(f"repro_{layer}_{key}").set(stats[layer][key])
        if "store" in stats:
            for key, value in stats["store"].items():
                registry.gauge(f"repro_store_{key}").set(value)
        with self._stats_lock:
            latency = dict(self._latency)
        for model_key, ewma in latency.items():
            label = f"{model_key.table}/{','.join(model_key.x_columns)}"
            if model_key.y_column:
                label += f"->{model_key.y_column}"
            registry.gauge(
                "repro_serve_model_latency_ewma_seconds", {"model": label}
            ).set(ewma)
