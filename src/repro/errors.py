"""Exception hierarchy for the DBEst reproduction.

Every error raised on a public code path derives from :class:`ReproError`
so callers can catch one base class.  Sub-hierarchies mirror the package
layout: storage, SQL front end, model/catalog, and query execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Problems with tables, schemas, or on-disk data."""


class UnknownTableError(StorageError):
    """A query or API call referenced a table that is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(StorageError):
    """A query or API call referenced a column the table does not have."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class SchemaMismatchError(StorageError):
    """Two tables or columns had incompatible shapes or dtypes."""


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""


class SQLSyntaxError(SQLError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class UnsupportedQueryError(SQLError):
    """The query parsed but uses features DBEst does not support."""


class ModelError(ReproError):
    """Base class for model-building and catalog errors."""


class ModelNotFoundError(ModelError):
    """No registered model can answer the query at hand."""


class ModelTrainingError(ModelError):
    """A model could not be trained (e.g. empty or degenerate sample)."""


class CatalogError(ModelError):
    """The model catalog was used inconsistently."""


class CorruptRecordError(CatalogError):
    """An on-disk model record failed its integrity checks.

    Raised by the lazy model store when a record's magic header, CRC, or
    pickle payload is bad.  The record is quarantined to a sidecar
    directory on first detection, so later touches of the same key fail
    fast with this error instead of re-reading the poisoned bytes.
    """


class BundleError(ModelError):
    """A model bundle could not be serialized or restored."""


class QueryExecutionError(ReproError):
    """A query failed while being evaluated against models or samples."""


class ServerOverloadedError(QueryExecutionError):
    """The serving queue is full and admission control shed this query.

    Under the ``"reject"`` shed policy it raises at ``submit`` time; under
    ``"drop-oldest"`` it resolves the *oldest* queued query's future so
    the new arrival can be admitted.
    """


class DeadlineExceededError(QueryExecutionError):
    """A query's serving deadline expired before an answer was produced."""


class CircuitOpenError(QueryExecutionError):
    """The per-model circuit breaker is open and degradation is off.

    After K consecutive model-path failures the breaker stops sending
    queries at the failing model; with graceful degradation disabled (or
    impossible — no base table registered) callers see this error
    immediately instead of waiting out another failure.
    """


class InvalidParameterError(ReproError, ValueError):
    """A public API received an out-of-range or malformed argument."""
